/**
 * @file
 * Latency histogram with percentile queries.
 *
 * Log-bucketed (HdrHistogram-style) so that nanosecond accelerator events
 * and millisecond page-fault chains share one structure with bounded
 * relative error. Used by every benchmark to report avg/p50/p99.
 */
#ifndef PULSE_COMMON_HISTOGRAM_H
#define PULSE_COMMON_HISTOGRAM_H

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace pulse {

class StateWriter;
class StateReader;

/**
 * Histogram over non-negative Time samples, with ~3% relative bucket
 * error. Also tracks exact sum/min/max for accurate means.
 */
class Histogram
{
  public:
    Histogram();

    /** Record one sample. Negative samples are clamped to zero. */
    void add(Time sample);

    /** Merge another histogram into this one. */
    void merge(const Histogram& other);

    /** Remove all samples. */
    void reset();

    /** Number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    Time mean() const;

    /** Smallest recorded sample (0 when empty). */
    Time min() const { return count_ ? min_ : 0; }

    /** Largest recorded sample (0 when empty). */
    Time max() const { return count_ ? max_ : 0; }

    /** Sum of all samples. */
    Time sum() const { return sum_; }

    /**
     * Value at quantile @p q in [0, 1]; e.g. 0.5 for median, 0.99 for
     * p99. Nearest-rank semantics over rank floor(q * (count - 1)):
     * the extreme ranks return the exact tracked min()/max(); interior
     * ranks return a bucket-representative value (upper bound of the
     * bucket containing the rank, clamped to max()), so a reported
     * percentile never exceeds the largest recorded sample.
     */
    Time percentile(double q) const;

    /**
     * Checkpoint support (common/serial.h): buckets plus the exact
     * count/sum/min/max, so a restored histogram reports bit-identical
     * percentiles to the uninterrupted run.
     */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

  private:
    static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave

    static std::size_t bucket_index(Time sample);
    static Time bucket_upper(std::size_t index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    Time sum_ = 0;
    Time min_ = 0;
    Time max_ = 0;
};

}  // namespace pulse

#endif  // PULSE_COMMON_HISTOGRAM_H
