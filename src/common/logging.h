/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: fatal() for user/configuration errors that
 * make continuing pointless, panic() for internal invariant violations
 * (i.e. pulse bugs). Both are printf-style.
 */
#ifndef PULSE_COMMON_LOGGING_H
#define PULSE_COMMON_LOGGING_H

#include <cstdarg>

namespace pulse {

/** Log verbosity levels, in increasing severity. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Set the minimum level that gets printed (default: kWarn). */
void set_log_level(LogLevel level);

/** Current minimum level. */
LogLevel log_level();

/** Emit a log line at @p level (printf-style). */
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Terminate with an error caused by invalid user input or configuration
 * (exit code 1, no core dump).
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to an internal invariant violation — a pulse bug. Calls
 * abort() so a core/debugger can take over.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Check an invariant; panics with location info on failure. */
#define PULSE_ASSERT(cond, fmt, ...)                                      \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pulse::panic("assertion '%s' failed at %s:%d: " fmt, #cond, \
                           __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);\
        }                                                                 \
    } while (0)

}  // namespace pulse

#endif  // PULSE_COMMON_LOGGING_H
