#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace pulse {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char*
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

void
vlog(const char* prefix, const char* fmt, va_list args)
{
    std::fprintf(stderr, "[pulse %s] ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
log_message(LogLevel level, const char* fmt, ...)
{
    if (level < g_level) {
        return;
    }
    va_list args;
    va_start(args, fmt);
    vlog(level_name(level), fmt, args);
    va_end(args);
}

void
fatal(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog("FATAL", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog("PANIC", fmt, args);
    va_end(args);
    std::abort();
}

}  // namespace pulse
