#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace pulse {
namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++) {
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    PULSE_ASSERT(bound > 0, "next_below(0)");
    // Lemire's debiased multiply-shift (Lemire 2019, "Fast Random
    // Integer Generation in an Interval"). The plain multiply-shift
    // maps 2^64 values onto `bound` cells, leaving (2^64 mod bound)
    // cells one value over-full; rejecting the first (2^64 mod bound)
    // low-half values of each stripe removes exactly that excess. The
    // cheap `low < bound` pre-test skips the modulo on all but
    // ~bound/2^64 of draws, so for simulator-scale bounds a rejection
    // is astronomically rare and existing seeded streams are
    // unchanged in practice.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            m = static_cast<unsigned __int128>(next_u64()) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::next_range(std::uint64_t lo, std::uint64_t hi)
{
    PULSE_ASSERT(lo <= hi, "next_range lo > hi");
    return lo + next_below(hi - lo + 1);
}

double
Rng::next_double()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool
Rng::next_bool(double p)
{
    return next_double() < p;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    PULSE_ASSERT(n > 0, "zipf over empty domain");
    zeta2theta_ = zeta(2, theta);
    zetan_ = zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t
ZipfGenerator::next(Rng& rng)
{
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) {
        return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
        return 1;
    }
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace pulse
