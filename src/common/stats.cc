#include "common/stats.h"

#include <cstdio>

#include "common/logging.h"

namespace pulse {

void
StatRegistry::register_counter(const std::string& name,
                               const Counter* counter)
{
    PULSE_ASSERT(counter != nullptr, "null counter '%s'", name.c_str());
    counters_[name] = counter;
}

void
StatRegistry::register_accumulator(const std::string& name,
                                   const Accumulator* acc)
{
    PULSE_ASSERT(acc != nullptr, "null accumulator '%s'", name.c_str());
    accumulators_[name] = acc;
}

std::map<std::string, double>
StatRegistry::snapshot() const
{
    std::map<std::string, double> out;
    for (const auto& [name, counter] : counters_) {
        out[name] = static_cast<double>(counter->value());
    }
    for (const auto& [name, acc] : accumulators_) {
        out[name] = acc->sum();
    }
    return out;
}

std::string
StatRegistry::dump() const
{
    std::string out;
    char line[256];
    for (const auto& [name, value] : snapshot()) {
        std::snprintf(line, sizeof(line), "%-56s %.6g\n", name.c_str(),
                      value);
        out += line;
    }
    return out;
}

}  // namespace pulse
