/**
 * @file
 * Fixed-capacity inline byte buffer for traversal scratch pads.
 *
 * Traversal packets, in-flight records, and replay-cache entries are
 * copied on every hop of the simulated rack; carrying the scratch pad
 * in a std::vector made each of those copies a heap allocation — the
 * dominant term in sim.allocs_per_event. A ScratchBuffer stores the
 * bytes inline (capacity sized to the largest scratch footprint any
 * shipped program declares, with headroom), so packet copies are plain
 * memcpys and the steady-state simulation path performs no allocation.
 *
 * The class is trivially copyable by design: that property is what
 * lets InlineFunction captures and pooled records hold packets with no
 * heap traffic, and it is enforced with a static_assert below. The API
 * mirrors the subset of std::vector<uint8_t> the codebase uses
 * (size/resize/assign/data/begin/end/operator[]), plus implicit
 * conversions from/to std::vector so call sites that still traffic in
 * vectors (interpreter workspaces, completions) keep working unchanged.
 */
#ifndef PULSE_COMMON_SCRATCH_BUFFER_H
#define PULSE_COMMON_SCRATCH_BUFFER_H

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace pulse {

/**
 * Inline capacity in bytes. The largest scratch footprint a shipped
 * program declares is the B+Tree scan resume state (344 bytes: the
 * 104-byte stage header plus 15 leaf slots x 16 bytes); the hash-table
 * find ships 264. 384 leaves headroom while keeping a packet capture
 * comfortably inside the event queue's inline budget. Growing a
 * program's shipped footprint past this is a loud assertion at the
 * resize site, not a silent heap fallback.
 */
inline constexpr std::size_t kScratchCapacity = 384;

/** Fixed-capacity byte buffer with a vector-like interface. */
class ScratchBuffer
{
  public:
    ScratchBuffer() = default;

    /** Implicit conversion from a vector (call-site compatibility). */
    ScratchBuffer(const std::vector<std::uint8_t>& bytes)  // NOLINT
    {
        assign(bytes.data(), bytes.size());
    }

    ScratchBuffer(std::size_t count, std::uint8_t value)
    {
        resize(count, value);
    }

    /** Materialize as a vector (interpreter/oracle boundaries). */
    std::vector<std::uint8_t>
    to_vector() const
    {
        return std::vector<std::uint8_t>(begin(), end());
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    static constexpr std::size_t capacity() { return kScratchCapacity; }

    std::uint8_t* data() { return bytes_.data(); }
    const std::uint8_t* data() const { return bytes_.data(); }

    std::uint8_t* begin() { return bytes_.data(); }
    const std::uint8_t* begin() const { return bytes_.data(); }
    std::uint8_t* end() { return bytes_.data() + size_; }
    const std::uint8_t* end() const { return bytes_.data() + size_; }

    std::uint8_t& operator[](std::size_t i) { return bytes_[i]; }
    const std::uint8_t& operator[](std::size_t i) const
    {
        return bytes_[i];
    }

    void clear() { size_ = 0; }

    void
    resize(std::size_t count, std::uint8_t value = 0)
    {
        assert(count <= kScratchCapacity &&
               "scratch footprint exceeds ScratchBuffer capacity — "
               "grow kScratchCapacity deliberately");
        if (count > size_) {
            std::memset(bytes_.data() + size_, value, count - size_);
        }
        size_ = static_cast<std::uint16_t>(count);
    }

    void
    assign(const std::uint8_t* src, std::size_t count)
    {
        assert(count <= kScratchCapacity &&
               "scratch footprint exceeds ScratchBuffer capacity — "
               "grow kScratchCapacity deliberately");
        std::memcpy(bytes_.data(), src, count);
        size_ = static_cast<std::uint16_t>(count);
    }

    /** Fill with @p count copies of @p value (vector's assign(n, v)). */
    void
    assign(std::size_t count, std::uint8_t value)
    {
        assert(count <= kScratchCapacity &&
               "scratch footprint exceeds ScratchBuffer capacity — "
               "grow kScratchCapacity deliberately");
        std::memset(bytes_.data(), value, count);
        size_ = static_cast<std::uint16_t>(count);
    }

    /**
     * Iterator-range assign. Constrained to non-integral iterators so
     * assign(16, 0) picks the count/value overload above, exactly like
     * std::vector's rule.
     */
    template <typename It,
              typename = std::enable_if_t<!std::is_integral_v<It>>>
    void
    assign(It first, It last)
    {
        std::size_t count = 0;
        for (It it = first; it != last; ++it) {
            assert(count < kScratchCapacity &&
                   "scratch footprint exceeds ScratchBuffer capacity");
            bytes_[count++] = static_cast<std::uint8_t>(*it);
        }
        size_ = static_cast<std::uint16_t>(count);
    }

    void
    push_back(std::uint8_t value)
    {
        assert(size_ < kScratchCapacity);
        bytes_[size_++] = value;
    }

    friend bool
    operator==(const ScratchBuffer& a, const ScratchBuffer& b)
    {
        return a.size_ == b.size_ &&
               std::equal(a.begin(), a.end(), b.begin());
    }

  private:
    std::uint16_t size_ = 0;
    std::array<std::uint8_t, kScratchCapacity> bytes_{};
};

/**
 * The whole point: copying a packet (retransmit buffers, replay
 * caches, event captures) must never touch the heap.
 */
static_assert(std::is_trivially_copyable_v<ScratchBuffer>);

}  // namespace pulse

#endif  // PULSE_COMMON_SCRATCH_BUFFER_H
