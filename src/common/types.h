/**
 * @file
 * Fundamental identifier and address types shared across all pulse modules.
 *
 * pulse models a rack-scale disaggregated-memory cluster: one or more CPU
 * (client) nodes, a programmable switch, and a set of memory nodes hosting
 * pulse accelerators. The types here give those entities strongly-named
 * identities so signatures stay self-documenting.
 */
#ifndef PULSE_COMMON_TYPES_H
#define PULSE_COMMON_TYPES_H

#include <cstdint>
#include <functional>
#include <limits>

namespace pulse {

/** A virtual address in the cluster-wide disaggregated address space. */
using VirtAddr = std::uint64_t;

/** A physical (node-local) byte offset into a memory node's DRAM. */
using PhysAddr = std::uint64_t;

/** The null virtual address: used as the "no next pointer" sentinel. */
inline constexpr VirtAddr kNullAddr = 0;

/** Identifies a memory node within the rack (dense, 0-based). */
using NodeId = std::uint32_t;

/** Identifies a CPU (client) node within the rack (dense, 0-based). */
using ClientId = std::uint32_t;

/** Identifies a switch port. */
using PortId = std::uint32_t;

/** Identifies an accelerator core within a memory node. */
using CoreId = std::uint32_t;

/** Identifies a workspace slot within an accelerator core. */
using WorkspaceId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/**
 * Cluster-unique request identifier (paper, section 4.1): the offload
 * engine embeds the CPU-node id and a local counter into each request so
 * that responses can be matched and timeouts retransmitted.
 */
struct RequestId
{
    ClientId client = 0;
    std::uint64_t seq = 0;

    friend bool operator==(const RequestId&, const RequestId&) = default;
    friend auto operator<=>(const RequestId&, const RequestId&) = default;
};

}  // namespace pulse

namespace std {

template <>
struct hash<pulse::RequestId>
{
    size_t
    operator()(const pulse::RequestId& id) const noexcept
    {
        return hash<uint64_t>()(
            (static_cast<uint64_t>(id.client) << 48) ^ id.seq);
    }
};

}  // namespace std

#endif  // PULSE_COMMON_TYPES_H
