/**
 * @file
 * Freelist-backed STL allocator for hot-path node containers.
 *
 * The simulator's steady state churns a small set of node-based
 * containers at packet rate: the offload engine's in-flight map, the
 * accelerator's replay-window map/deques, and the admission queue's
 * deques. Under the default allocator every insert/erase cycle is a
 * malloc/free pair — a large slice of sim.allocs_per_event. This
 * allocator recycles freed blocks through size-keyed freelists instead
 * of returning them to the heap, so once a container reaches its
 * steady-state population, insert/erase performs no allocation at all.
 *
 * Design notes:
 *   - State is held behind a shared_ptr so rebound copies (map nodes,
 *     deque blocks, bucket arrays — all different sizes) share one pool
 *     and the allocator satisfies the STL copy/equality requirements.
 *   - A handful of size bins cover the distinct block sizes one
 *     container requests; sizes past the largest bin (or huge one-off
 *     arrays like hash buckets) fall through to operator new, which is
 *     fine: those are O(log n) growth events, not per-packet traffic.
 *   - No thread safety: one pool belongs to one simulated cluster,
 *     matching the rest of the simulator.
 */
#ifndef PULSE_COMMON_POOL_ALLOCATOR_H
#define PULSE_COMMON_POOL_ALLOCATOR_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pulse {

/** Shared freelist state behind every rebound copy of one allocator. */
class PoolState
{
  public:
    static constexpr std::size_t kBins = 8;
    /** Largest pooled block: covers map/set nodes holding packets and
     *  deque blocks (libstdc++ caps them at 512 bytes of elements). */
    static constexpr std::size_t kMaxPooled = 2048;

    void*
    allocate(std::size_t bytes)
    {
        const std::size_t bin = bin_for(bytes);
        if (bin < kBins && !free_[bin].empty()) {
            void* block = free_[bin].back();
            free_[bin].pop_back();
            reused_++;
            return block;
        }
        fresh_++;
        return ::operator new(bin < kBins ? bin_bytes(bin) : bytes);
    }

    void
    deallocate(void* block, std::size_t bytes)
    {
        const std::size_t bin = bin_for(bytes);
        if (bin < kBins) {
            free_[bin].push_back(block);
            return;
        }
        ::operator delete(block);
    }

    std::uint64_t fresh() const { return fresh_; }
    std::uint64_t reused() const { return reused_; }

    ~PoolState()
    {
        for (auto& bin : free_) {
            for (void* block : bin) {
                ::operator delete(block);
            }
        }
    }

  private:
    /** Bin b holds blocks of 32 << b bytes (32..4096). */
    static std::size_t
    bin_for(std::size_t bytes)
    {
        std::size_t bin = 0;
        std::size_t cap = 32;
        while (cap < bytes) {
            cap <<= 1;
            bin++;
        }
        return cap <= kMaxPooled * 2 && bin < kBins ? bin : kBins;
    }

    static std::size_t bin_bytes(std::size_t bin) { return 32u << bin; }

    std::array<std::vector<void*>, kBins> free_;
    std::uint64_t fresh_ = 0;
    std::uint64_t reused_ = 0;
};

/** STL allocator recycling node blocks through a shared PoolState. */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    PoolAllocator() : state_(std::make_shared<PoolState>()) {}

    explicit PoolAllocator(std::shared_ptr<PoolState> state)
        : state_(std::move(state))
    {
    }

    template <typename U>
    PoolAllocator(const PoolAllocator<U>& other) : state_(other.state())
    {
    }

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(state_->allocate(n * sizeof(T)));
    }

    void
    deallocate(T* p, std::size_t n)
    {
        state_->deallocate(p, n * sizeof(T));
    }

    const std::shared_ptr<PoolState>& state() const { return state_; }

    template <typename U>
    friend bool
    operator==(const PoolAllocator& a, const PoolAllocator<U>& b)
    {
        return a.state() == b.state();
    }

  private:
    std::shared_ptr<PoolState> state_;
};

}  // namespace pulse

#endif  // PULSE_COMMON_POOL_ALLOCATOR_H
