#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/serial.h"

namespace pulse {

Histogram::Histogram() = default;

std::size_t
Histogram::bucket_index(Time sample)
{
    const auto v = static_cast<std::uint64_t>(sample);
    if (v < (1ull << kSubBucketBits)) {
        return static_cast<std::size_t>(v);
    }
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    const auto sub = static_cast<std::size_t>(
        (v >> shift) & ((1ull << kSubBucketBits) - 1));
    // One octave of 2^kSubBucketBits buckets per leading-bit position.
    return (static_cast<std::size_t>(msb - kSubBucketBits + 1)
            << kSubBucketBits) + sub;
}

Time
Histogram::bucket_upper(std::size_t index)
{
    if (index < (1ull << kSubBucketBits)) {
        return static_cast<Time>(index);
    }
    const auto octave = (index >> kSubBucketBits);
    const auto sub = index & ((1ull << kSubBucketBits) - 1);
    const int shift = static_cast<int>(octave) - 1;
    const std::uint64_t base = (1ull << kSubBucketBits) << shift;
    const std::uint64_t step = 1ull << shift;
    return static_cast<Time>(base + (sub + 1) * step - 1);
}

void
Histogram::add(Time sample)
{
    if (sample < 0) {
        sample = 0;
    }
    const auto index = bucket_index(sample);
    if (index >= buckets_.size()) {
        buckets_.resize(index + 1, 0);
    }
    buckets_[index]++;
    if (count_ == 0) {
        min_ = max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    count_++;
    sum_ += sample;
}

void
Histogram::merge(const Histogram& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (other.buckets_.size() > buckets_.size()) {
        buckets_.resize(other.buckets_.size(), 0);
    }
    for (std::size_t i = 0; i < other.buckets_.size(); i++) {
        buckets_[i] += other.buckets_[i];
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

Time
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<Time>(count_) : 0;
}

void
Histogram::save_state(StateWriter& writer) const
{
    writer.put_tag("HIST");
    writer.put_u64(buckets_.size());
    for (const std::uint64_t bucket : buckets_) {
        writer.put_u64(bucket);
    }
    writer.put_u64(count_);
    writer.put_i64(sum_);
    writer.put_i64(min_);
    writer.put_i64(max_);
}

void
Histogram::load_state(StateReader& reader)
{
    reader.expect_tag("HIST");
    buckets_.assign(reader.get_u64(), 0);
    for (std::uint64_t& bucket : buckets_) {
        bucket = reader.get_u64();
    }
    count_ = reader.get_u64();
    sum_ = reader.get_i64();
    min_ = reader.get_i64();
    max_ = reader.get_i64();
}

Time
Histogram::percentile(double q) const
{
    if (count_ == 0) {
        return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    // Nearest-rank extremes are known exactly: the lowest rank is the
    // tracked minimum, the highest the tracked maximum. Without the
    // low-side special case, percentile(0.0) would report the first
    // non-empty bucket's *upper* bound — a value that can exceed every
    // recorded sample (e.g. samples {1000, 1003} -> 1007).
    if (target == 0) {
        return min_;
    }
    if (target == count_ - 1) {
        return max_;
    }
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); i++) {
        seen += buckets_[i];
        if (seen > target) {
            return std::min(bucket_upper(i), max_);
        }
    }
    return max_;
}

}  // namespace pulse
