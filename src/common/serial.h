/**
 * @file
 * Tiny tagged binary serializer for simulation checkpoints.
 *
 * Checkpoint blobs are written and read by the same build on the same
 * machine (fork-from-warm-snapshot, not an interchange format), so the
 * encoding is deliberately simple: little-endian fixed-width scalars
 * and length-prefixed byte runs, with optional u32 section tags so a
 * component mismatch fails loudly at the offending section instead of
 * desynchronizing silently. Doubles round-trip bit-exactly via
 * memcpy — required for the restore-determinism guarantee.
 */
#ifndef PULSE_COMMON_SERIAL_H
#define PULSE_COMMON_SERIAL_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace pulse {

/** Append-only checkpoint writer. */
class StateWriter
{
  public:
    void
    put_u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    put_u32(std::uint32_t v)
    {
        put_raw(&v, sizeof(v));
    }

    void
    put_u64(std::uint64_t v)
    {
        put_raw(&v, sizeof(v));
    }

    void
    put_i64(std::int64_t v)
    {
        put_raw(&v, sizeof(v));
    }

    void
    put_double(double v)
    {
        put_raw(&v, sizeof(v));
    }

    void
    put_bool(bool v)
    {
        put_u8(v ? 1 : 0);
    }

    /** Length-prefixed byte run. */
    void
    put_bytes(const void* data, std::size_t len)
    {
        put_u64(len);
        put_raw(data, len);
    }

    /** Section tag: a four-char marker checked on read. */
    void
    put_tag(const char (&tag)[5])
    {
        put_raw(tag, 4);
    }

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    void
    put_raw(const void* data, std::size_t len)
    {
        const auto* p = static_cast<const std::uint8_t*>(data);
        bytes_.insert(bytes_.end(), p, p + len);
    }

    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked checkpoint reader. */
class StateReader
{
  public:
    explicit StateReader(const std::vector<std::uint8_t>& bytes)
        : data_(bytes.data()), size_(bytes.size())
    {
    }

    std::uint8_t
    get_u8()
    {
        std::uint8_t v = 0;
        get_raw(&v, sizeof(v));
        return v;
    }

    std::uint32_t
    get_u32()
    {
        std::uint32_t v = 0;
        get_raw(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    get_u64()
    {
        std::uint64_t v = 0;
        get_raw(&v, sizeof(v));
        return v;
    }

    std::int64_t
    get_i64()
    {
        std::int64_t v = 0;
        get_raw(&v, sizeof(v));
        return v;
    }

    double
    get_double()
    {
        double v = 0;
        get_raw(&v, sizeof(v));
        return v;
    }

    bool get_bool() { return get_u8() != 0; }

    std::vector<std::uint8_t>
    get_bytes()
    {
        const std::uint64_t len = get_u64();
        PULSE_ASSERT(len <= size_ - offset_,
                     "checkpoint truncated inside a byte run");
        std::vector<std::uint8_t> out(data_ + offset_,
                                      data_ + offset_ + len);
        offset_ += len;
        return out;
    }

    /** Read a byte run directly into @p dest (must be len long). */
    void
    get_bytes_into(void* dest, std::size_t expected_len)
    {
        const std::uint64_t len = get_u64();
        PULSE_ASSERT(len == expected_len,
                     "checkpoint byte-run length mismatch "
                     "(%llu vs expected %zu)",
                     static_cast<unsigned long long>(len),
                     expected_len);
        get_raw(dest, expected_len);
    }

    /** Consume and verify a section tag written by put_tag. */
    void
    expect_tag(const char (&tag)[5])
    {
        char got[5] = {0, 0, 0, 0, 0};
        get_raw(got, 4);
        PULSE_ASSERT(std::memcmp(got, tag, 4) == 0,
                     "checkpoint section mismatch: expected '%s' got "
                     "'%s'",
                     tag, got);
    }

    bool done() const { return offset_ == size_; }
    std::size_t remaining() const { return size_ - offset_; }

  private:
    void
    get_raw(void* dest, std::size_t len)
    {
        PULSE_ASSERT(len <= size_ - offset_, "checkpoint truncated");
        std::memcpy(dest, data_ + offset_, len);
        offset_ += len;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t offset_ = 0;
};

}  // namespace pulse

#endif  // PULSE_COMMON_SERIAL_H
