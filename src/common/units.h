/**
 * @file
 * Time and data-size units used throughout the simulator.
 *
 * Simulated time is kept as an integral count of picoseconds so that
 * sub-nanosecond component latencies (e.g. the accelerator's 1.17 ns per
 * logic instruction) accumulate without rounding drift. Helpers convert
 * to/from the human-facing units used in the paper (ns, us, GB/s).
 */
#ifndef PULSE_COMMON_UNITS_H
#define PULSE_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace pulse {

/** Simulated time, in picoseconds. */
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000 * kPicosecond;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/** Construct a Time from nanoseconds (fractional allowed). */
constexpr Time
nanos(double ns)
{
    return static_cast<Time>(ns * kNanosecond);
}

/** Construct a Time from microseconds (fractional allowed). */
constexpr Time
micros(double us)
{
    return static_cast<Time>(us * kMicrosecond);
}

/** Convert a Time to (fractional) nanoseconds. */
constexpr double
to_nanos(Time t)
{
    return static_cast<double>(t) / kNanosecond;
}

/** Convert a Time to (fractional) microseconds. */
constexpr double
to_micros(Time t)
{
    return static_cast<double>(t) / kMicrosecond;
}

/** Convert a Time to (fractional) seconds. */
constexpr double
to_seconds(Time t)
{
    return static_cast<double>(t) / kSecond;
}

/** Data sizes, in bytes. */
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/**
 * A transfer rate in bytes per second; used for memory channels, links,
 * and bandwidth accounting. Stored as double since rates are only ever
 * used to derive durations.
 */
using Rate = double;

/** Rate helper: gigabytes (1e9 bytes) per second, as used in the paper. */
constexpr Rate
gbps_bytes(double gb_per_s)
{
    return gb_per_s * 1e9;
}

/** Rate helper: gigabits per second (network links). */
constexpr Rate
gbps_bits(double gbit_per_s)
{
    return gbit_per_s * 1e9 / 8.0;
}

/**
 * Time to serialize @p bytes at @p rate. Returns at least 1 ps for any
 * non-zero payload so event ordering stays strict.
 */
constexpr Time
transfer_time(Bytes bytes, Rate rate)
{
    if (bytes == 0 || rate <= 0.0) {
        return 0;
    }
    const double seconds = static_cast<double>(bytes) / rate;
    const auto t = static_cast<Time>(seconds * kSecond);
    return t > 0 ? t : 1;
}

/** Pretty-print a duration with an auto-selected unit (for reports). */
std::string format_time(Time t);

/** Pretty-print a byte count with an auto-selected unit (for reports). */
std::string format_bytes(Bytes b);

}  // namespace pulse

#endif  // PULSE_COMMON_UNITS_H
