/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * Provides a small, fast xoshiro256** engine plus the distributions the
 * evaluation needs: uniform integers/reals and the Zipfian distribution
 * used by YCSB-style key popularity (Gray et al.'s rejection-free
 * construction, as used in the YCSB reference generator).
 */
#ifndef PULSE_COMMON_RANDOM_H
#define PULSE_COMMON_RANDOM_H

#include <cstdint>

namespace pulse {

/**
 * xoshiro256** PRNG. Deterministic for a given seed, which keeps every
 * benchmark and test reproducible run-to-run.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Exactly uniform integer in [0, bound) via Lemire's debiased
     *  multiply-shift (rejection removes the modulo bias that the
     *  bare multiply-shift carries for bounds not dividing 2^64). */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli trial with probability @p p. */
    bool next_bool(double p);

    /** Checkpoint support: copy the raw engine state into @p out. */
    void
    save_state(std::uint64_t (&out)[4]) const
    {
        for (int i = 0; i < 4; i++) {
            out[i] = state_[i];
        }
    }

    /** Checkpoint support: reinstate a saved engine state. */
    void
    restore_state(const std::uint64_t (&in)[4])
    {
        for (int i = 0; i < 4; i++) {
            state_[i] = in[i];
        }
    }

  private:
    std::uint64_t state_[4];
};

/**
 * Zipfian distribution over [0, n) with skew parameter theta, following
 * the YCSB generator. theta = 0.99 is the YCSB default; the paper's UPC
 * and TC workloads use uniform distributions, but Zipf is provided for
 * the sensitivity studies and for generality of the workload library.
 */
class ZipfGenerator
{
  public:
    /** Prepare a generator over @p n items with skew @p theta. */
    ZipfGenerator(std::uint64_t n, double theta);

    /** Sample an item rank; rank 0 is the most popular. */
    std::uint64_t next(Rng& rng);

    /** Number of items. */
    std::uint64_t size() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2theta_;
};

}  // namespace pulse

#endif  // PULSE_COMMON_RANDOM_H
