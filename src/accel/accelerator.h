/**
 * @file
 * The pulse accelerator at a memory node (paper section 4.2).
 *
 * Structure mirrors Fig. 2: a hardware network stack parses traversal
 * packets; a scheduler assigns each request to a core workspace; every
 * core couples one memory-access pipeline (TCAM translation + protection
 * + aggregated 256 B load through the node's memory channels) with eta
 * logic pipelines (the ISA interpreter, costed per instruction) and
 * 2*eta workspaces, executing iterators in the staggered schedule of
 * Fig. 3. Iterations alternate memory and logic phases until NEXT_ITER
 * stops (RETURN / fault / iteration cap) or cur_ptr leaves the node, at
 * which point a response packet carrying cur_ptr + scratch_pad goes back
 * through the network stack — to the client, or via the switch to the
 * next node (section 5).
 *
 * All functional effects (loads, stores) hit the node's real simulated
 * DRAM, so accelerator results are actual traversal results.
 */
#ifndef PULSE_ACCEL_ACCELERATOR_H
#define PULSE_ACCEL_ACCELERATOR_H

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include <unordered_set>

#include "accel/accel_config.h"
#include "accel/admission_queue.h"
#include "accel/replay_window.h"
#include "check/invariants.h"
#include "common/serial.h"
#include "common/stats.h"
#include "faults/fault_plane.h"
#include "isa/analysis.h"
#include "mem/global_memory.h"
#include "mem/memory_channel.h"
#include "mem/range_tcam.h"
#include "net/network.h"
#include "placement/placement_plane.h"
#include "replication/replication_plane.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace pulse::serve {
class QosController;
}

namespace pulse::accel {

/** Aggregated accelerator statistics (drives Figs. 6, 7, 9). */
struct AccelStats
{
    Counter requests_received;
    Counter responses_sent;
    Counter forwards_sent;        ///< kNotLocal continuations emitted
    Counter iterations;
    Counter loads;
    Counter stores;
    Counter cas_ops;  ///< successful atomic swaps (extension)
    Counter protection_faults;
    Counter queue_drops;
    Counter duplicates_suppressed;  ///< dups of an executing visit
    Counter replays_sent;           ///< cached responses replayed

    /** Busy-time integrals for utilization/energy (picoseconds). */
    Accumulator net_stack_time;
    Accumulator scheduler_time;
    Accumulator mem_pipeline_time;   ///< latency portion per load
    Accumulator logic_pipeline_time; ///< per-iteration latency (Fig 9)
    Accumulator logic_busy_time;     ///< occupancy integral (energy)
    Accumulator workspace_wait_time; ///< admission-queue wait per req
};

/** One memory node's accelerator. */
class Accelerator
{
  public:
    /**
     * @param queue    shared event queue
     * @param network  rack fabric (this attaches itself as the node's
     *                 traversal sink)
     * @param memory   cluster memory (functional data path)
     * @param channels the node's DRAM channels (bandwidth model)
     * @param node     which memory node this accelerator serves
     * @param config   timing/shape parameters
     */
    Accelerator(sim::EventQueue& queue, net::Network& network,
                mem::GlobalMemory& memory, mem::ChannelSet& channels,
                NodeId node, const AccelConfig& config);

    /** The node-local translation/protection TCAM. */
    mem::RangeTcam& tcam() { return tcam_; }
    const mem::RangeTcam& tcam() const { return tcam_; }

    /** Dedup window (the placement plane hands it off at cutovers). */
    ReplayWindow& replay_window() { return replay_; }

    /** Statistics. */
    const AccelStats& stats() const { return stats_; }

    /** Reset statistics (not in-flight state). */
    void reset_stats();

    /** Register statistics under @p prefix. */
    void register_stats(const std::string& prefix,
                        StatRegistry& registry);

    /** Requests currently executing or queued. */
    std::size_t inflight() const;

    /**
     * Consult @p plane for this node's slow-factor windows (graceful
     * degradation: all pipeline latencies stretch by the factor while
     * a kSlow window is active). nullptr (the default) is a no-op.
     */
    void set_fault_plane(const faults::FaultPlane* plane)
    {
        fault_plane_ = plane;
    }

    /**
     * Attach the placement plane (nullptr detaches). While attached,
     * every translated load is reported for hotness sampling, and a
     * store/CAS whose TCAM translation misses because a migration
     * cutover raced the traversal is forwarded to the slab's current
     * owner instead of faulting (the dual-residency window). Detached
     * — the default — this path is a single null check.
     */
    void set_placement(placement::PlacementPlane* plane)
    {
        placement_ = plane;
    }

    /**
     * Attach the replication plane (nullptr detaches). While attached,
     * every store/CAS the accelerator applies is mirrored into live
     * replicas (write-synchronous k-way replication) and every replay-
     * window transition is mirrored into the other nodes' windows, so
     * exactly-once survives this node dying mid-request. Detached —
     * the default — each hook is a single null check.
     */
    void set_replication(replication::ReplicationPlane* plane)
    {
        replication_ = plane;
    }

    /**
     * Attach the serving plane's QoS admission controller (nullptr
     * detaches — the default, and a single null check per packet).
     * While attached, fresh root requests are charged against their
     * tenant's traversal quota between the scheduler stage and
     * placement, queued requests respect per-SLO-class depth caps
     * (overflow is shed with a typed kRejected response), and the
     * admission queue's kWeightedDrr policy reads tenant weights from
     * the controller.
     */
    void set_serving(serve::QosController* serving);

    /**
     * Re-entry point for a quota-throttled packet the QosController
     * parked and released: continues at placement (the net-stack and
     * scheduler stages were already paid on the way in) without being
     * charged again.
     */
    void readmit(net::TraversalPacket&& packet);

    /**
     * Attach the cluster's span tracer (nullptr detaches). Every
     * stats_ busy-time addition then also records a span for sampled
     * packets, so trace-derived decompositions can be cross-checked
     * against the accumulator-based accounting exactly.
     */
    void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

    /**
     * Attach an invariant registry (nullptr detaches). While attached,
     * every visit that begins executing is recorded, and a second
     * execution of the same (request id, visit) — which the replay
     * window should have suppressed or replayed — is reported as a
     * duplicate-execution violation.
     */
    void set_invariants(check::InvariantRegistry* registry)
    {
        invariants_ = registry;
    }

    const AccelConfig& config() const { return config_; }

    /**
     * Checkpoint support (core/checkpoint.h): requires a quiesced
     * accelerator (no queued or executing requests). The replay window
     * is deliberately not serialized — at quiesce every client
     * operation has completed, so no retransmit of a recorded visit can
     * arrive after restore, and new visits classify as kNew.
     */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

    /** Context-pool telemetry (bench_wallclock's visit-pool row). */
    std::uint64_t contexts_created() const { return contexts_created_; }
    std::uint64_t contexts_reused() const { return contexts_reused_; }

    /** Packet-pool telemetry: heap blocks allocated / recycled by the
     *  admission-queue and replay-window pools (bench_wallclock's
     *  packet-pool row). */
    std::uint64_t
    packet_pool_fresh() const
    {
        return pending_.pool_fresh() + replay_.pool_fresh();
    }

    std::uint64_t
    packet_pool_reused() const
    {
        return pending_.pool_reused() + replay_.pool_reused();
    }

  private:
    /** One in-flight traversal bound to a workspace. */
    struct Context
    {
        net::TraversalPacket packet;
        isa::Workspace workspace;
        const isa::ProgramAnalysis* analysis = nullptr;
        std::uint64_t iterations_this_visit = 0;
        /** iterations_done when the packet arrived: the visit key. */
        std::uint64_t arrival_iterations = 0;
    };

    /** One accelerator core (Fig. 2). */
    struct Core
    {
        Time mem_pipe_free = 0;               // next load issue slot
        std::vector<Time> logic_free;         // per logic pipeline
        std::vector<std::unique_ptr<Context>> workspaces;
    };

    /**
     * Pop a recycled Context (or allocate the pool's next one). The
     * steady state recycles: contexts only live in workspace slots, so
     * the pool never exceeds num_cores * workspaces_per_core entries.
     */
    std::unique_ptr<Context> acquire_context();

    /** Return a finished context to the pool (frees it if pooling off). */
    void release_context(std::unique_ptr<Context> context);

    void on_packet(net::TraversalPacket&& packet);
    void admit(net::TraversalPacket&& packet);
    void place(net::TraversalPacket&& packet);
    void shed_reject(net::TraversalPacket&& packet);
    void forget_visit(const ReplayWindow::Key& key);
    bool try_dispatch(net::TraversalPacket& packet);
    void start_memory_phase(CoreId core, WorkspaceId ws);
    void start_logic_phase(CoreId core, WorkspaceId ws, Time mem_done);
    void finish(CoreId core, WorkspaceId ws, isa::TraversalStatus status,
                isa::ExecFault fault);
    void send_response(Context& context, isa::TraversalStatus status,
                       isa::ExecFault fault);
    const isa::ProgramAnalysis* analysis_for(
        const isa::Program* program);

    /** Stretch @p t by the node's current slow factor (1.0 = as-is). */
    Time scaled(Time t) const;

    /** True when spans should be recorded for @p packet. */
    bool
    tracing(const net::TraversalPacket& packet) const
    {
        return tracer_ != nullptr && tracer_->enabled() &&
               packet.trace.sampled;
    }

    /** Record one span attributed to this node. */
    void
    record_span(const net::TraversalPacket& packet,
                trace::SpanKind kind, Time start, Time duration,
                std::uint64_t detail = 0)
    {
        tracer_->record({packet.id, kind, trace::Location::kMemNode,
                         node_, start, duration, detail});
    }

    sim::EventQueue& queue_;
    net::Network& network_;
    mem::GlobalMemory& memory_;
    mem::ChannelSet& channels_;
    NodeId node_;
    AccelConfig config_;
    mem::RangeTcam tcam_;
    std::vector<Core> cores_;
    AdmissionQueue pending_;
    std::unordered_map<const isa::Program*, isa::ProgramAnalysis>
        analysis_cache_;
    ReplayWindow replay_;
    const faults::FaultPlane* fault_plane_ = nullptr;
    placement::PlacementPlane* placement_ = nullptr;
    replication::ReplicationPlane* replication_ = nullptr;
    trace::Tracer* tracer_ = nullptr;
    serve::QosController* serving_ = nullptr;
    check::InvariantRegistry* invariants_ = nullptr;
    /** Visits that began executing (only tracked while checking). */
    std::unordered_set<ReplayWindow::Key, ReplayWindow::KeyHash>
        executed_visits_;
    /**
     * Context freelist: finished visits park their Context here instead
     * of freeing it, so the dispatch hot path stops allocating once the
     * pool is warm. Disabled (acquire news, release frees) when
     * PULSE_POOLING=off.
     */
    std::vector<std::unique_ptr<Context>> context_pool_;
    bool pooling_ = true;
    std::uint64_t contexts_created_ = 0;
    std::uint64_t contexts_reused_ = 0;
    /**
     * Persistent CAS functor for the logic phase. Captures only `this`
     * (fits std::function's inline buffer); per-iteration operands
     * travel in cas_base_/cas_fault_ so no closure is rebuilt — the
     * old per-iteration lambda's 24-byte capture heap-allocated on
     * every single iteration.
     */
    isa::CasFn cas_fn_;
    VirtAddr cas_base_ = 0;
    bool cas_fault_ = false;
    AccelStats stats_;
};

}  // namespace pulse::accel

#endif  // PULSE_ACCEL_ACCELERATOR_H
