#include "accel/admission_queue.h"

#include <algorithm>

#include "common/logging.h"
#include "serve/qos.h"

namespace pulse::accel {

AdmissionQueue::AdmissionQueue(SchedPolicy policy) : policy_(policy)
{
}

std::uint32_t
AdmissionQueue::flow_key(const net::TraversalPacket& packet) const
{
    return policy_ == SchedPolicy::kWeightedDrr ? packet.tenant
                                                : packet.origin;
}

std::uint32_t
AdmissionQueue::quantum_of(std::uint32_t flow) const
{
    if (qos_ == nullptr) {
        return 1;
    }
    return std::max<std::uint32_t>(qos_->weight_of(flow), 1);
}

void
AdmissionQueue::push(net::TraversalPacket&& packet)
{
    if (policy_ == SchedPolicy::kFifo) {
        fifo_.push_back(std::move(packet));
    } else {
        const std::uint32_t flow = flow_key(packet);
        PacketDeque& queue = per_flow_[flow];
        if (queue.empty()) {
            // First queued packet of this flow: join the service
            // ring's tail. A drained flow re-arrives here too — one
            // full rotation behind, never ahead of waiting peers.
            ring_.push_back(flow);
        }
        queue.push_back(std::move(packet));
    }
    size_++;
}

net::TraversalPacket
AdmissionQueue::pop()
{
    PULSE_ASSERT(size_ > 0, "pop from empty admission queue");
    size_--;
    if (policy_ == SchedPolicy::kFifo) {
        net::TraversalPacket packet = std::move(fifo_.front());
        fifo_.pop_front();
        return packet;
    }

    PULSE_ASSERT(!ring_.empty(), "admission ring out of sync");
    const std::uint32_t flow = ring_.front();
    const auto pos = per_flow_.find(flow);
    PULSE_ASSERT(pos != per_flow_.end() && !pos->second.empty(),
                 "admission ring names a drained flow");
    net::TraversalPacket packet = std::move(pos->second.front());
    pos->second.pop_front();

    if (policy_ == SchedPolicy::kFairShare) {
        // Strict round-robin: serve one packet, rotate.
        ring_.pop_front();
        if (pos->second.empty()) {
            per_flow_.erase(pos);
        } else {
            ring_.push_back(flow);
        }
        return packet;
    }

    // kWeightedDrr: cost 1 per packet against the flow's deficit; the
    // flow keeps the front of the ring until its round (quantum =
    // tenant weight) is spent or its queue drains.
    std::uint32_t& deficit = deficit_[flow];
    if (deficit == 0) {
        deficit = quantum_of(flow);
    }
    deficit--;
    if (pos->second.empty()) {
        per_flow_.erase(pos);
        deficit_.erase(flow);
        ring_.pop_front();
    } else if (deficit == 0) {
        ring_.pop_front();
        ring_.push_back(flow);
    }
    return packet;
}

}  // namespace pulse::accel
