#include "accel/admission_queue.h"

#include "common/logging.h"

namespace pulse::accel {

AdmissionQueue::AdmissionQueue(SchedPolicy policy) : policy_(policy)
{
}

void
AdmissionQueue::push(net::TraversalPacket&& packet)
{
    if (policy_ == SchedPolicy::kFifo) {
        fifo_.push_back(std::move(packet));
    } else {
        per_client_[packet.origin].push_back(std::move(packet));
    }
    size_++;
}

net::TraversalPacket
AdmissionQueue::pop()
{
    PULSE_ASSERT(size_ > 0, "pop from empty admission queue");
    size_--;
    if (policy_ == SchedPolicy::kFifo) {
        net::TraversalPacket packet = std::move(fifo_.front());
        fifo_.pop_front();
        return packet;
    }

    // Round-robin: serve the first non-empty client queue strictly
    // after the cursor, wrapping around.
    auto pos = per_client_.upper_bound(cursor_);
    if (pos == per_client_.end()) {
        pos = per_client_.begin();
    }
    // All remaining queues may sit at/before the cursor; the wrap
    // above plus the erase-on-empty below guarantee pos is valid and
    // non-empty.
    while (pos->second.empty()) {
        pos = std::next(pos);
        if (pos == per_client_.end()) {
            pos = per_client_.begin();
        }
    }
    cursor_ = pos->first;
    net::TraversalPacket packet = std::move(pos->second.front());
    pos->second.pop_front();
    if (pos->second.empty()) {
        per_client_.erase(pos);
    }
    return packet;
}

}  // namespace pulse::accel
