#include "accel/replay_window.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace pulse::accel {

void
ReplayWindow::evict_for(ClientId client)
{
    auto& order = order_[client];
    while (order.size() >= capacity_ && !order.empty()) {
        // FIFO like the real dedup SRAM: oldest visit leaves first. An
        // entry evicted while a duplicate is still in flight merely
        // loses suppression for that duplicate — correctness degrades
        // to at-least-once only when the window is sized far below the
        // client's in-flight budget.
        entries_.erase(order.front());
        order.pop_front();
    }
}

void
ReplayWindow::mark_in_progress(const Key& key)
{
    if (!enabled()) {
        return;
    }
    const auto [it, inserted] = entries_.try_emplace(key);
    if (!inserted) {
        return;
    }
    evict_for(key.id.client);
    order_[key.id.client].push_back(key);
}

void
ReplayWindow::unmark(const Key& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.done) {
        return;
    }
    entries_.erase(it);
    auto& order = order_[key.id.client];
    for (auto order_it = order.begin(); order_it != order.end();
         ++order_it) {
        if (*order_it == key) {
            order.erase(order_it);
            break;
        }
    }
}

void
ReplayWindow::forget(const Key& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        return;
    }
    entries_.erase(it);
    auto& order = order_[key.id.client];
    for (auto order_it = order.begin(); order_it != order.end();
         ++order_it) {
        if (*order_it == key) {
            order.erase(order_it);
            break;
        }
    }
}

void
ReplayWindow::record_response(const Key& key,
                              net::TraversalPacket response)
{
    if (!enabled()) {
        return;
    }
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        // The entry was evicted mid-execution; nothing to record.
        return;
    }
    it->second.done = true;
    it->second.response = std::move(response);
}

std::size_t
ReplayWindow::absorb_from(ReplayWindow& donor)
{
    if (!enabled() || !donor.enabled()) {
        return 0;
    }
    // Deterministic absorption order: unordered_map iteration varies
    // between runs, so walk clients ascending and each client's FIFO.
    std::vector<ClientId> clients;
    clients.reserve(donor.order_.size());
    for (const auto& [client, order] : donor.order_) {
        if (!order.empty()) {
            clients.push_back(client);
        }
    }
    std::sort(clients.begin(), clients.end());
    std::size_t copied = 0;
    for (const ClientId client : clients) {
        for (const Key& key : donor.order_.at(client)) {
            const auto donor_it = donor.entries_.find(key);
            if (donor_it == donor.entries_.end()) {
                continue;
            }
            const auto [it, inserted] =
                entries_.try_emplace(key, donor_it->second);
            if (!inserted) {
                continue;  // already here from an earlier handoff
            }
            evict_for(key.id.client);
            order_[key.id.client].push_back(key);
            copied++;
            if (!donor_it->second.done) {
                // Still executing at the donor: remember to mirror the
                // eventual response (or admission drop) to the windows
                // holding the absorbed copy, so a later retransmit is
                // replayed there instead of suppressed forever.
                donor.handed_off_.insert(key);
            }
        }
    }
    return copied;
}

void
ReplayWindow::import_completion(const Key& key,
                                const net::TraversalPacket& response)
{
    if (!enabled()) {
        return;
    }
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.done) {
        return;  // not absorbed here, or already completed
    }
    it->second.done = true;
    it->second.response = response;
}

const net::TraversalPacket*
ReplayWindow::cached_response(const Key& key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.done) {
        return nullptr;
    }
    return &it->second.response;
}

}  // namespace pulse::accel
