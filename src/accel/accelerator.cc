#include "accel/accelerator.h"

#include <algorithm>

#include "common/env_knobs.h"
#include "common/logging.h"
#include "serve/qos.h"

namespace pulse::accel {

using isa::TraversalStatus;

Accelerator::Accelerator(sim::EventQueue& queue, net::Network& network,
                         mem::GlobalMemory& memory,
                         mem::ChannelSet& channels, NodeId node,
                         const AccelConfig& config)
    : queue_(queue), network_(network), memory_(memory),
      channels_(channels), node_(node), config_(config),
      tcam_(config.tcam_entries), pending_(config.sched_policy),
      replay_(config.replay_window_entries),
      pooling_(pooling_enabled())
{
    PULSE_ASSERT(config.num_cores > 0, "accelerator needs cores");
    PULSE_ASSERT(config.eta_pipelines > 0, "eta must be >= 1");
    // Built once; start_logic_phase re-arms cas_base_/cas_fault_ per
    // iteration instead of rebuilding a closure (see header).
    cas_fn_ = [this](std::uint64_t mem_off, std::uint64_t expected,
                     std::uint64_t desired) {
        const auto translated = tcam_.translate_span(
            cas_base_ + mem_off, 8, mem::Perm::kReadWrite);
        if (translated.status != mem::TranslateStatus::kOk) {
            // Dual-residency window: the slab migrated after this
            // iteration's load; apply the CAS at the current owner.
            if (translated.status == mem::TranslateStatus::kMiss &&
                placement_ != nullptr) {
                const auto forwarded = placement_->try_forward_cas(
                    node_, cas_base_ + mem_off, expected, desired,
                    queue_.now());
                if (forwarded.has_value()) {
                    if (*forwarded) {
                        stats_.cas_ops.increment();
                        if (replication_ != nullptr) {
                            replication_->mirror_cas(
                                node_, cas_base_ + mem_off, desired,
                                queue_.now());
                        }
                    }
                    return *forwarded;
                }
            }
            cas_fault_ = true;
            return false;
        }
        channels_.access(queue_.now(), 8);
        const std::uint64_t current =
            memory_.node(node_).read_as<std::uint64_t>(translated.phys);
        if (current != expected) {
            return false;
        }
        memory_.node(node_).write_as<std::uint64_t>(translated.phys,
                                                    desired);
        stats_.cas_ops.increment();
        if (replication_ != nullptr) {
            // Synchronous replication channel: the winning value is
            // applied to every live replica in the same event.
            replication_->mirror_cas(node_, cas_base_ + mem_off,
                                     desired, queue_.now());
        }
        return true;
    };
    cores_.resize(config.num_cores);
    for (Core& core : cores_) {
        core.logic_free.assign(config.eta_pipelines, 0);
        core.workspaces.resize(config.workspaces_per_core());
    }
    network_.attach_traversal_sink(
        net::EndpointAddr::mem_node(node_),
        [this](net::TraversalPacket&& packet) {
            on_packet(std::move(packet));
        });
}

void
Accelerator::reset_stats()
{
    stats_ = AccelStats{};
}

void
Accelerator::register_stats(const std::string& prefix,
                            StatRegistry& registry)
{
    registry.register_counter(prefix + ".requests",
                              &stats_.requests_received);
    registry.register_counter(prefix + ".responses",
                              &stats_.responses_sent);
    registry.register_counter(prefix + ".forwards",
                              &stats_.forwards_sent);
    registry.register_counter(prefix + ".iterations",
                              &stats_.iterations);
    registry.register_counter(prefix + ".loads", &stats_.loads);
    registry.register_counter(prefix + ".stores", &stats_.stores);
    registry.register_counter(prefix + ".protection_faults",
                              &stats_.protection_faults);
    registry.register_counter(prefix + ".queue_drops",
                              &stats_.queue_drops);
    registry.register_counter(prefix + ".duplicates_suppressed",
                              &stats_.duplicates_suppressed);
    registry.register_counter(prefix + ".replays_sent",
                              &stats_.replays_sent);
    registry.register_accumulator(prefix + ".net_stack_ps",
                                  &stats_.net_stack_time);
    registry.register_accumulator(prefix + ".scheduler_ps",
                                  &stats_.scheduler_time);
    registry.register_accumulator(prefix + ".mem_pipeline_ps",
                                  &stats_.mem_pipeline_time);
    registry.register_accumulator(prefix + ".logic_pipeline_ps",
                                  &stats_.logic_pipeline_time);
    registry.register_accumulator(prefix + ".workspace_wait_ps",
                                  &stats_.workspace_wait_time);
}

std::size_t
Accelerator::inflight() const
{
    std::size_t n = pending_.size();
    for (const Core& core : cores_) {
        for (const auto& ws : core.workspaces) {
            if (ws) {
                n++;
            }
        }
    }
    return n;
}

std::unique_ptr<Accelerator::Context>
Accelerator::acquire_context()
{
    if (!context_pool_.empty()) {
        std::unique_ptr<Context> context =
            std::move(context_pool_.back());
        context_pool_.pop_back();
        contexts_reused_++;
        // configure() re-zeroes the workspace on the valid-program
        // path; reset the rest here so even the invalid-program early
        // exit never sees a previous visit's state.
        context->analysis = nullptr;
        context->iterations_this_visit = 0;
        context->arrival_iterations = 0;
        context->workspace.cur_ptr = kNullAddr;
        context->workspace.flags = 0;
        return context;
    }
    contexts_created_++;
    return std::make_unique<Context>();
}

void
Accelerator::release_context(std::unique_ptr<Context> context)
{
    if (pooling_) {
        context_pool_.push_back(std::move(context));
    }
}

const isa::ProgramAnalysis*
Accelerator::analysis_for(const isa::Program* program)
{
    const auto it = analysis_cache_.find(program);
    if (it != analysis_cache_.end()) {
        return &it->second;
    }
    auto [pos, inserted] =
        analysis_cache_.emplace(program, isa::analyze(*program));
    (void)inserted;
    return &pos->second;
}

Time
Accelerator::scaled(Time t) const
{
    if (fault_plane_ == nullptr || !fault_plane_->enabled()) {
        return t;
    }
    const double factor =
        fault_plane_->node_slow_factor(node_, queue_.now());
    if (factor == 1.0) {
        // Exact no-op outside slow windows: no float round-trip.
        return t;
    }
    return static_cast<Time>(static_cast<double>(t) * factor);
}

void
Accelerator::on_packet(net::TraversalPacket&& packet)
{
    stats_.requests_received.increment();
    // Duplicate suppression in the network stack: a visit key is
    // (request id, iterations_done), unique per node visit because
    // iterations_done only grows along a traversal.
    const ReplayWindow::Key key{packet.id, packet.iterations_done};
    if (replay_.enabled()) {
        switch (replay_.classify(key)) {
            case ReplayWindow::Verdict::kInProgress:
                // Still executing; the eventual response answers both
                // copies (the client matches by id, not by copy).
                stats_.duplicates_suppressed.increment();
                return;
            case ReplayWindow::Verdict::kCached: {
                // Executed already: replay the recorded packet rather
                // than re-running (exactly-once for stores/CAS). This
                // also repairs a dropped forward: the cached packet IS
                // the continuation the switch re-routes.
                //
                // Exception: a zero-progress kNotLocal bounce (no
                // iteration ran, so no side effects). Its cached packet
                // only says "route me by current ownership" — and when
                // this node *became* the owner since it was recorded
                // (the slab migrated here, or the entry arrived via a
                // cutover's replay-digest handoff), replaying it would
                // bounce the packet between switch and accelerator
                // forever. Re-execute under current routes instead.
                if (const net::TraversalPacket* bounce =
                        replay_.cached_response(key);
                    bounce->status == TraversalStatus::kNotLocal &&
                    bounce->iterations_done == packet.iterations_done) {
                    replay_.forget(key);
                    replay_.mark_in_progress(key);
                    break;
                }
                stats_.replays_sent.increment();
                net::TraversalPacket cached =
                    *replay_.cached_response(key);
                const Time parse = scaled(config_.net_stack_latency);
                stats_.net_stack_time.add(static_cast<double>(parse));
                if (tracing(packet)) {
                    record_span(packet, trace::SpanKind::kAccelNetStackRx,
                                queue_.now(), parse);
                }
                queue_.schedule_after(
                    parse, [this, cached = std::move(cached)]() mutable {
                        network_.send_traversal(
                            net::EndpointAddr::mem_node(node_),
                            std::move(cached));
                    });
                return;
            }
            case ReplayWindow::Verdict::kNew:
                replay_.mark_in_progress(key);
                if (replication_ != nullptr) {
                    // Write-synchronous digest mirroring: replicas must
                    // suppress a retransmit of this visit even if this
                    // node dies before completing it.
                    replication_->mirror_mark(node_, key);
                }
                break;
        }
    }
    // Hardware network stack: parse the packet (rx side).
    const Time parse = scaled(config_.net_stack_latency);
    stats_.net_stack_time.add(static_cast<double>(parse));
    if (tracing(packet)) {
        record_span(packet, trace::SpanKind::kAccelNetStackRx,
                    queue_.now(), parse);
    }
    queue_.schedule_after(parse,
                          [this, packet = std::move(packet)]() mutable {
                              admit(std::move(packet));
                          });
}

void
Accelerator::admit(net::TraversalPacket&& packet)
{
    // Scheduler: parse payload, pick an idle workspace (4 ns, Fig. 9).
    const Time dispatch = scaled(config_.scheduler_latency);
    stats_.scheduler_time.add(static_cast<double>(dispatch));
    if (tracing(packet)) {
        record_span(packet, trace::SpanKind::kAccelScheduler,
                    queue_.now(), dispatch);
    }
    queue_.schedule_after(
        dispatch, [this, packet = std::move(packet)]() mutable {
            if (serving_ != nullptr) {
                // QoS admission: charge fresh roots against the
                // tenant's traversal quota. A throttled packet is now
                // owned by the controller (parked; re-enters via
                // readmit() when the bucket refills).
                switch (serving_->charge(node_, packet)) {
                  case serve::QosController::Verdict::kAdmit:
                    break;
                  case serve::QosController::Verdict::kThrottle:
                    return;
                  case serve::QosController::Verdict::kShed:
                    shed_reject(std::move(packet));
                    return;
                }
            }
            place(std::move(packet));
        });
}

void
Accelerator::place(net::TraversalPacket&& packet)
{
    if (try_dispatch(packet)) {
        return;
    }
    if (pending_.size() >= config_.max_pending) {
        // Drop; the offload engine's timer retransmits. The visit
        // never executed, so forget it — the retransmit must be
        // allowed to run.
        stats_.queue_drops.increment();
        forget_visit({packet.id, packet.iterations_done});
        return;
    }
    if (serving_ != nullptr &&
        !serving_->may_enqueue(node_, packet)) {
        // The tenant's SLO class has exhausted its queue-depth cap at
        // this node: shed with a typed rejection instead of queueing
        // (bounded queueing delay for the latency class; the offload
        // engine surfaces it as a retryable completion).
        shed_reject(std::move(packet));
        return;
    }
    packet.trace.queued_at = queue_.now();
    if (serving_ != nullptr) {
        serving_->note_enqueued(node_, packet.tenant);
    }
    pending_.push(std::move(packet));
}

void
Accelerator::set_serving(serve::QosController* serving)
{
    serving_ = serving;
    pending_.set_qos(serving);
}

void
Accelerator::readmit(net::TraversalPacket&& packet)
{
    // The controller stamped queued_at when it parked the packet; the
    // span covers the full time spent waiting for quota tokens.
    if (tracing(packet)) {
        record_span(packet, trace::SpanKind::kAccelQosThrottle,
                    packet.trace.queued_at,
                    queue_.now() - packet.trace.queued_at);
    }
    place(std::move(packet));
}

void
Accelerator::forget_visit(const ReplayWindow::Key& key)
{
    // The visit never executed, so every record of it must go — here,
    // in cutover-absorbed copies, and in the replicated digests — or a
    // retransmit would be suppressed forever.
    replay_.unmark(key);
    if (placement_ != nullptr && replay_.consume_handoff(key)) {
        placement_->mirror_unmark(node_, key);
    }
    if (replication_ != nullptr) {
        replication_->mirror_unmark(node_, key);
    }
}

void
Accelerator::shed_reject(net::TraversalPacket&& packet)
{
    if (serving_ != nullptr) {
        serving_->note_shed(node_, packet.tenant);
    }
    forget_visit({packet.id, packet.iterations_done});
    if (tracing(packet)) {
        record_span(packet, trace::SpanKind::kAccelQosShed,
                    queue_.now(), 0);
    }
    // Typed rejection: a response that never executed an iteration.
    // The offload engine surfaces it as a timed_out+rejected
    // completion, riding the driver's existing retry/backoff path.
    net::TraversalPacket response;
    response.id = packet.id;
    response.origin = packet.origin;
    response.tenant = packet.tenant;
    response.is_response = true;
    response.status = TraversalStatus::kRejected;
    response.cur_ptr = packet.cur_ptr;
    response.iterations_done = packet.iterations_done;
    response.visit_echo = packet.visit_echo;
    response.trace.sampled = packet.trace.sampled;
    response.spawn_depth = packet.spawn_depth;
    response.parent_id = packet.parent_id;
    response.branch_index = packet.branch_index;
    response.code = packet.code;
    response.code_size = net::kCodeIdBytes;
    // Never a switch continuation: a rejection always returns to the
    // origin client.
    response.allow_switch_continuation = false;
    response.scratch = packet.scratch;
    stats_.responses_sent.increment();
    const Time deparse = scaled(config_.net_stack_latency);
    stats_.net_stack_time.add(static_cast<double>(deparse));
    if (tracing(response)) {
        record_span(response, trace::SpanKind::kAccelNetStackTx,
                    queue_.now(), deparse);
    }
    queue_.schedule_after(
        deparse, [this, response = std::move(response)]() mutable {
            network_.send_traversal(net::EndpointAddr::mem_node(node_),
                                    std::move(response));
        });
}

bool
Accelerator::try_dispatch(net::TraversalPacket& packet)
{
    // Pick the core with the most free workspaces (load balance).
    Core* best_core = nullptr;
    CoreId best_id = 0;
    std::size_t best_free = 0;
    for (CoreId c = 0; c < cores_.size(); c++) {
        std::size_t free_slots = 0;
        for (const auto& ws : cores_[c].workspaces) {
            if (!ws) {
                free_slots++;
            }
        }
        if (free_slots > best_free) {
            best_free = free_slots;
            best_core = &cores_[c];
            best_id = c;
        }
    }
    if (best_core == nullptr) {
        return false;
    }

    WorkspaceId slot = 0;
    while (best_core->workspaces[slot]) {
        slot++;
    }

    std::unique_ptr<Context> context = acquire_context();
    context->packet = std::move(packet);
    context->arrival_iterations = context->packet.iterations_done;
    context->iterations_this_visit = 0;
    if (invariants_ != nullptr && replay_.enabled()) {
        const ReplayWindow::Key key{context->packet.id,
                                    context->arrival_iterations};
        if (!executed_visits_.insert(key).second) {
            invariants_->report(check::Violation{
                .kind = check::InvariantKind::kDuplicateExecution,
                .when = queue_.now(),
                .packet = context->packet.id,
                .component =
                    "accel.node" + std::to_string(node_),
                .message = "visit " +
                           std::to_string(context->arrival_iterations) +
                           " began executing twice (replay window "
                           "failed to suppress a duplicate)"});
        }
    }
    context->analysis = analysis_for(context->packet.code);
    if (!context->analysis->valid) {
        // Reject malformed programs with an execution fault response.
        send_response(*context, TraversalStatus::kExecFault,
                      isa::ExecFault::kIllegalInstruction);
        release_context(std::move(context));
        return true;
    }
    context->workspace.configure(*context->packet.code);
    context->workspace.cur_ptr = context->packet.cur_ptr;
    context->workspace.spawn_depth = context->packet.spawn_depth;
    std::copy_n(context->packet.scratch.begin(),
                std::min(context->packet.scratch.size(),
                         context->workspace.scratch.size()),
                context->workspace.scratch.begin());

    best_core->workspaces[slot] = std::move(context);
    start_memory_phase(best_id, slot);
    return true;
}

void
Accelerator::start_memory_phase(CoreId core_id, WorkspaceId ws)
{
    Core& core = cores_[core_id];
    Context& context = *core.workspaces[ws];
    const Time now = queue_.now();
    const std::uint32_t load_bytes = context.packet.code->load_bytes();

    if (load_bytes == 0) {
        start_logic_phase(core_id, ws, now);
        return;
    }

    // Null-page semantics: a null cur_ptr loads zeros without touching
    // DRAM, so programs can use cur_ptr == 0 as a termination test.
    if (context.workspace.cur_ptr == kNullAddr) {
        const Time tcam_cost = scaled(config_.mem_pipeline_latency / 4);
        stats_.mem_pipeline_time.add(static_cast<double>(tcam_cost));
        if (tracing(context.packet)) {
            // detail == 0: TCAM-only span, no DRAM load performed.
            record_span(context.packet,
                        trace::SpanKind::kAccelMemPipeline, now,
                        tcam_cost);
        }
        queue_.schedule_after(tcam_cost, [this, core_id, ws, load_bytes] {
            Core& c = cores_[core_id];
            Context& ctx = *c.workspaces[ws];
            std::fill_n(ctx.workspace.data.begin(), load_bytes, 0);
            start_logic_phase(core_id, ws, queue_.now());
        });
        return;
    }

    // Address translation + protection (TCAM, part of the memory
    // pipeline's 120 ns). A miss means the pointer lives on another
    // node: hierarchical translation hands the request back to the
    // switch (section 5).
    const auto translated = tcam_.translate_span(
        context.workspace.cur_ptr, load_bytes, mem::Perm::kRead);
    if (translated.status == mem::TranslateStatus::kMiss) {
        const Time tcam_cost = scaled(config_.mem_pipeline_latency / 4);
        stats_.mem_pipeline_time.add(static_cast<double>(tcam_cost));
        if (tracing(context.packet)) {
            record_span(context.packet,
                        trace::SpanKind::kAccelMemPipeline, now,
                        tcam_cost);
        }
        queue_.schedule_after(tcam_cost, [this, core_id, ws] {
            finish(core_id, ws, TraversalStatus::kNotLocal,
                   isa::ExecFault::kNone);
        });
        return;
    }
    if (translated.status == mem::TranslateStatus::kProtectionFault) {
        stats_.protection_faults.increment();
        const Time tcam_cost = scaled(config_.mem_pipeline_latency / 4);
        stats_.mem_pipeline_time.add(static_cast<double>(tcam_cost));
        if (tracing(context.packet)) {
            record_span(context.packet,
                        trace::SpanKind::kAccelMemPipeline, now,
                        tcam_cost);
        }
        queue_.schedule_after(tcam_cost, [this, core_id, ws] {
            finish(core_id, ws, TraversalStatus::kMemFault,
                   isa::ExecFault::kNone);
        });
        return;
    }

    // Issue the aggregated load: the pipeline issues back-to-back at
    // channel occupancy granularity (AXI bursts in flight), each load
    // completing after the full access latency. The data registers
    // receive a snapshot of memory as of the issue time — concurrent
    // writers (STOREs, CAS) landing while the load is in flight are
    // not observed, which is what makes CAS retry loops meaningful.
    const Time start = std::max(now, core.mem_pipe_free);
    const Time channel_done = channels_.access(start, load_bytes);
    const Time done = std::max(
        start + scaled(config_.mem_pipeline_latency), channel_done);
    core.mem_pipe_free = channel_done;
    stats_.loads.increment();
    if (placement_ != nullptr) {
        placement_->record_access(context.workspace.cur_ptr,
                                  load_bytes);
    }
    stats_.mem_pipeline_time.add(static_cast<double>(done - start));
    if (tracing(context.packet)) {
        record_span(context.packet, trace::SpanKind::kAccelMemPipeline,
                    start, done - start, load_bytes);
    }

    memory_.node(node_).read(translated.phys,
                             context.workspace.data.data(),
                             load_bytes);
    queue_.schedule_at(done, [this, core_id, ws] {
        start_logic_phase(core_id, ws, queue_.now());
    });
}

void
Accelerator::start_logic_phase(CoreId core_id, WorkspaceId ws,
                               Time mem_done)
{
    Core& core = cores_[core_id];

    // Static workspace -> logic-pipeline binding (Fig. 3's staggered
    // schedule: each logic pipeline multiplexes two workspaces). The
    // functional execution happens at the logic pipeline's actual
    // start time (a separate event), so memory effects from other
    // in-flight iterators can interleave between a workspace's LOAD
    // and its logic — which is what makes CAS contention observable.
    const std::uint32_t lp = ws % config_.eta_pipelines;
    const Time start = std::max(mem_done, core.logic_free[lp]);
    if (start > queue_.now()) {
        queue_.schedule_at(start, [this, core_id, ws] {
            start_logic_phase(core_id, ws, queue_.now());
        });
        return;
    }
    Context& context = *core.workspaces[ws];

    // Functional execution of the iteration's logic. The CAS
    // extension performs its read-modify-write through the TCAM and
    // channels inside cas_fn_ (built once at construction);
    // event-level execution makes it atomic. Iterations run
    // synchronously and never nest, so the member operand slots are
    // safe to re-arm here.
    cas_base_ = context.packet.cur_ptr;
    cas_fault_ = false;
    isa::IterationResult iter =
        run_iteration(*context.packet.code, context.workspace, cas_fn_);
    const bool cas_fault = cas_fault_;
    const Time t_c =
        scaled(static_cast<Time>(iter.instructions_executed) *
               config_.logic_time_per_insn);
    const Time done = start + t_c;
    // The datapath is pipelined: the next iterator may enter after the
    // initiation interval, not the full latency.
    const Time interval = std::max<Time>(
        t_c / std::max<std::uint32_t>(config_.logic_pipeline_depth, 1),
        1);
    core.logic_free[lp] = start + interval;
    stats_.logic_pipeline_time.add(static_cast<double>(t_c));
    stats_.logic_busy_time.add(static_cast<double>(interval));
    if (tracing(context.packet)) {
        record_span(context.packet,
                    trace::SpanKind::kAccelLogicPipeline, start, t_c,
                    iter.instructions_executed);
    }
    stats_.iterations.increment();
    context.packet.iterations_done++;
    context.iterations_this_visit++;

    // Apply write-backs through the memory channels.
    bool store_fault = false;
    const VirtAddr iter_ptr = context.packet.cur_ptr;
    for (const isa::PendingStore& st : iter.stores) {
        const auto translated = tcam_.translate_span(
            iter_ptr + st.mem_offset, st.length, mem::Perm::kWrite);
        if (translated.status != mem::TranslateStatus::kOk) {
            // Dual-residency window: a cutover raced this iteration
            // (its load translated here before the slab moved). The
            // write is applied at the current owner via the placement
            // plane — never a spurious fault, never stale bytes.
            if (translated.status == mem::TranslateStatus::kMiss &&
                placement_ != nullptr &&
                placement_->try_forward_store(
                    node_, iter_ptr + st.mem_offset,
                    context.workspace.data.data() + st.data_offset,
                    st.length, done)) {
                stats_.stores.increment();
                if (replication_ != nullptr) {
                    replication_->mirror_store(
                        node_, iter_ptr + st.mem_offset,
                        context.workspace.data.data() + st.data_offset,
                        st.length, done);
                }
                continue;
            }
            stats_.protection_faults.increment();
            store_fault = true;
            break;
        }
        channels_.access(done, st.length);
        memory_.node(node_).write(
            translated.phys,
            context.workspace.data.data() + st.data_offset, st.length);
        stats_.stores.increment();
        if (replication_ != nullptr) {
            replication_->mirror_store(
                node_, iter_ptr + st.mem_offset,
                context.workspace.data.data() + st.data_offset,
                st.length, done);
        }
    }

    // Fork/join: collect the iteration's SPAWN records onto the packet.
    // The visit ends the moment an iteration spawns ("spawn flush"), so
    // the list can only overflow under a broken implementation (e.g.
    // the double-join mutation) — fault instead of dropping branches.
    bool spawn_overflow = false;
    for (const isa::SpawnRecord& record : iter.spawns) {
        if (!context.packet.spawns.push(record)) {
            spawn_overflow = true;
            break;
        }
    }

    TraversalStatus status = TraversalStatus::kDone;
    isa::ExecFault fault = isa::ExecFault::kNone;
    bool continue_traversal = false;
    if (cas_fault) {
        stats_.protection_faults.increment();
        store_fault = true;
    }
    if (store_fault) {
        status = TraversalStatus::kMemFault;
    } else if (spawn_overflow) {
        status = TraversalStatus::kExecFault;
        fault = isa::ExecFault::kSpawnOverflow;
    } else if (iter.end == isa::IterEnd::kFault) {
        status = TraversalStatus::kExecFault;
        fault = iter.fault;
    } else if (iter.end == isa::IterEnd::kReturn) {
        status = TraversalStatus::kDone;
    } else if (iter.end == isa::IterEnd::kJoin) {
        // The chain is done; the engine holds the request open until
        // every spawned subtree has reduced into the join record.
        status = TraversalStatus::kDone;
    } else if (!iter.spawns.empty()) {
        // Spawn flush: ship the records to the issuing engine now (it
        // forks the children) and let it resume this traversal with a
        // fresh visit — same resume semantics as a MAX_ITER bounce.
        status = TraversalStatus::kMaxIter;
    } else {
        // MAX_ITER is a per-request (per-visit) budget (section 3.1):
        // a continuation re-issued by the client or another node gets a
        // fresh budget while iterations_done keeps the global count.
        const std::uint64_t cap =
            std::min<std::uint64_t>(context.packet.code->max_iters(),
                                    config_.max_iters_cap);
        if (context.iterations_this_visit >= cap) {
            status = TraversalStatus::kMaxIter;
        } else {
            continue_traversal = true;
        }
    }

    if (continue_traversal) {
        // Commit the next pointer and hand back to the memory pipeline.
        queue_.schedule_at(done, [this, core_id, ws] {
            Core& c = cores_[core_id];
            c.workspaces[ws]->packet.cur_ptr =
                c.workspaces[ws]->workspace.cur_ptr;
            start_memory_phase(core_id, ws);
        });
    } else {
        queue_.schedule_at(done, [this, core_id, ws, status, fault] {
            finish(core_id, ws, status, fault);
        });
    }
}

void
Accelerator::finish(CoreId core_id, WorkspaceId ws,
                    TraversalStatus status, isa::ExecFault fault)
{
    Core& core = cores_[core_id];
    std::unique_ptr<Context> context = std::move(core.workspaces[ws]);
    send_response(*context, status, fault);
    release_context(std::move(context));

    if (!pending_.empty()) {
        net::TraversalPacket next = pending_.pop();
        if (serving_ != nullptr) {
            serving_->note_dequeued(node_, next.tenant);
        }
        // The request waited in the admission queue for a workspace
        // from queued_at until now (Fig. 9's "workspace wait" slice;
        // zero for requests dispatched straight from the scheduler).
        const Time waited = queue_.now() - next.trace.queued_at;
        stats_.workspace_wait_time.add(static_cast<double>(waited));
        if (tracing(next)) {
            record_span(next, trace::SpanKind::kAccelWorkspaceWait,
                        next.trace.queued_at, waited);
        }
        const bool dispatched = try_dispatch(next);
        PULSE_ASSERT(dispatched, "dispatch must succeed after a free");
    }
}

void
Accelerator::send_response(Context& context, TraversalStatus status,
                           isa::ExecFault fault)
{
    net::TraversalPacket response;
    response.id = context.packet.id;
    response.origin = context.packet.origin;
    response.tenant = context.packet.tenant;
    response.is_response = true;
    response.status = status;
    response.fault = fault;
    response.cur_ptr = (context.analysis != nullptr &&
                        context.analysis->valid)
                           ? context.workspace.cur_ptr
                           : context.packet.cur_ptr;
    response.iterations_done = context.packet.iterations_done;
    response.visit_echo = context.packet.visit_echo;
    response.trace.sampled = context.packet.trace.sampled;
    // Fork/join: the spawn records collected this visit travel back to
    // the issuing engine; lineage and depth are echoed so the engine
    // (or a failover replica's) can rendezvous the packet at the
    // parent's join record.
    response.spawns = context.packet.spawns;
    response.spawn_depth = context.packet.spawn_depth;
    response.parent_id = context.packet.parent_id;
    response.branch_index = context.packet.branch_index;
    response.code = context.packet.code;
    // Responses and forwarded continuations reference installed code.
    response.code_size = net::kCodeIdBytes;
    response.allow_switch_continuation =
        context.packet.allow_switch_continuation &&
        config_.forward_via_switch;

    // Ship the scratch_pad footprint (state travels with the request,
    // section 5's stateful-continuation mechanism).
    const std::size_t footprint =
        context.analysis != nullptr
            ? std::max<std::size_t>(context.analysis->scratch_footprint,
                                    context.packet.scratch.size())
            : context.packet.scratch.size();
    response.scratch.assign(
        context.workspace.scratch.begin(),
        context.workspace.scratch.begin() +
            std::min(footprint, context.workspace.scratch.size()));

    if (status == TraversalStatus::kNotLocal &&
        response.allow_switch_continuation) {
        stats_.forwards_sent.increment();
    } else {
        stats_.responses_sent.increment();
    }
    // Complete the visit in the replay window: duplicates arriving
    // from now on get this exact packet replayed.
    const ReplayWindow::Key visit_key{context.packet.id,
                                      context.arrival_iterations};
    replay_.record_response(visit_key, response);
    if (placement_ != nullptr && replay_.consume_handoff(visit_key)) {
        // A migration cutover absorbed this still-executing visit into
        // another node's window; complete the absorbed copies so a
        // retransmit routed to the new owner replays this response.
        placement_->mirror_completion(node_, visit_key, response);
    }
    if (replication_ != nullptr) {
        // Mirror the completed visit into the replicas' windows: if
        // this node dies before the response escapes, the retransmit
        // that lands on the surviving replica replays this packet
        // instead of re-executing its stores.
        replication_->mirror_response(node_, visit_key, response);
    }
    const Time deparse = scaled(config_.net_stack_latency);
    stats_.net_stack_time.add(static_cast<double>(deparse));
    if (tracing(response)) {
        record_span(response, trace::SpanKind::kAccelNetStackTx,
                    queue_.now(), deparse);
    }
    queue_.schedule_after(
        deparse, [this, response = std::move(response)]() mutable {
            network_.send_traversal(net::EndpointAddr::mem_node(node_),
                                    std::move(response));
        });
}

void
Accelerator::save_state(StateWriter& writer) const
{
    PULSE_ASSERT(inflight() == 0,
                 "checkpoint requires a quiesced accelerator");
    writer.put_tag("ACCL");
    writer.put_u64(cores_.size());
    for (const Core& core : cores_) {
        writer.put_i64(core.mem_pipe_free);
        writer.put_u64(core.logic_free.size());
        for (const Time t : core.logic_free) {
            writer.put_i64(t);
        }
    }
    const auto& entries = tcam_.entries();
    writer.put_u64(entries.size());
    for (const mem::RangeEntry& entry : entries) {
        writer.put_u64(entry.va_base);
        writer.put_u64(entry.length);
        writer.put_u64(entry.phys_base);
        writer.put_u8(static_cast<std::uint8_t>(entry.perm));
    }
    writer.put_u64(stats_.requests_received.value());
    writer.put_u64(stats_.responses_sent.value());
    writer.put_u64(stats_.forwards_sent.value());
    writer.put_u64(stats_.iterations.value());
    writer.put_u64(stats_.loads.value());
    writer.put_u64(stats_.stores.value());
    writer.put_u64(stats_.cas_ops.value());
    writer.put_u64(stats_.protection_faults.value());
    writer.put_u64(stats_.queue_drops.value());
    writer.put_u64(stats_.duplicates_suppressed.value());
    writer.put_u64(stats_.replays_sent.value());
    for (const Accumulator* acc :
         {&stats_.net_stack_time, &stats_.scheduler_time,
          &stats_.mem_pipeline_time, &stats_.logic_pipeline_time,
          &stats_.logic_busy_time, &stats_.workspace_wait_time}) {
        writer.put_double(acc->sum());
        writer.put_u64(acc->count());
    }
}

void
Accelerator::load_state(StateReader& reader)
{
    PULSE_ASSERT(inflight() == 0,
                 "restore requires a quiesced accelerator");
    reader.expect_tag("ACCL");
    const std::uint64_t num_cores = reader.get_u64();
    PULSE_ASSERT(num_cores == cores_.size(),
                 "checkpoint core count mismatch");
    for (Core& core : cores_) {
        core.mem_pipe_free = reader.get_i64();
        const std::uint64_t pipes = reader.get_u64();
        PULSE_ASSERT(pipes == core.logic_free.size(),
                     "checkpoint logic-pipeline count mismatch");
        for (Time& t : core.logic_free) {
            t = reader.get_i64();
        }
    }
    const std::uint64_t num_entries = reader.get_u64();
    std::vector<mem::RangeEntry> entries(num_entries);
    for (mem::RangeEntry& entry : entries) {
        entry.va_base = reader.get_u64();
        entry.length = reader.get_u64();
        entry.phys_base = reader.get_u64();
        entry.perm = static_cast<mem::Perm>(reader.get_u8());
    }
    tcam_.restore_entries(std::move(entries));
    stats_.requests_received.set(reader.get_u64());
    stats_.responses_sent.set(reader.get_u64());
    stats_.forwards_sent.set(reader.get_u64());
    stats_.iterations.set(reader.get_u64());
    stats_.loads.set(reader.get_u64());
    stats_.stores.set(reader.get_u64());
    stats_.cas_ops.set(reader.get_u64());
    stats_.protection_faults.set(reader.get_u64());
    stats_.queue_drops.set(reader.get_u64());
    stats_.duplicates_suppressed.set(reader.get_u64());
    stats_.replays_sent.set(reader.get_u64());
    for (Accumulator* acc :
         {&stats_.net_stack_time, &stats_.scheduler_time,
          &stats_.mem_pipeline_time, &stats_.logic_pipeline_time,
          &stats_.logic_busy_time, &stats_.workspace_wait_time}) {
        const double sum = reader.get_double();
        const std::uint64_t count = reader.get_u64();
        acc->set(sum, count);
    }
}

}  // namespace pulse::accel
