/**
 * @file
 * Policy-driven admission queue for the accelerator scheduler.
 *
 * The paper's scheduler admits pending traversal requests in FIFO
 * order; its supplementary material (section B) proposes extending the
 * signal-driven scheduler with fairness/isolation policies for
 * multi-tenant memory nodes. This queue implements three policies:
 * kFifo (arrival order), kFairShare (round-robin across origin
 * clients, so one client's flood cannot starve another's requests),
 * and kWeightedDrr (weighted deficit round-robin across tenants, the
 * serving plane's QoS scheduler — see src/serve).
 *
 * The non-FIFO policies share one mechanism: per-flow FIFOs plus an
 * explicit service ring of flows with queued work. A flow joins the
 * ring's *tail* when its first packet arrives and leaves when it
 * drains, so a flow that drains and re-arrives deterministically waits
 * one full rotation — the cursor-based round-robin this replaces could
 * re-serve such a flow immediately (its key sat just after the cursor),
 * letting a fast re-arriving client starve slower peers of their turn.
 */
#ifndef PULSE_ACCEL_ADMISSION_QUEUE_H
#define PULSE_ACCEL_ADMISSION_QUEUE_H

#include <deque>
#include <map>

#include "accel/accel_config.h"
#include "common/pool_allocator.h"
#include "net/packet.h"

namespace pulse::serve {
class QosController;
}

namespace pulse::accel {

/** Bounded, policy-driven request queue. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(SchedPolicy policy);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /**
     * Attach the serving plane's QoS controller (nullptr detaches):
     * supplies per-tenant weights for kWeightedDrr. Without one every
     * tenant weighs 1.
     */
    void set_qos(const serve::QosController* qos) { qos_ = qos; }

    /** Enqueue a request (caller enforces the capacity bound). */
    void push(net::TraversalPacket&& packet);

    /** Dequeue the next request per the policy. empty() must be
     *  false. */
    net::TraversalPacket pop();

    /** Heap blocks the backing pools had to allocate (bench_wallclock
     *  attribution: steady state should add ~none). */
    std::uint64_t
    pool_fresh() const
    {
        std::uint64_t fresh = fifo_.get_allocator().state()->fresh() +
                              per_flow_.get_allocator().state()->fresh();
        for (const auto& [flow, fifo] : per_flow_) {
            fresh += fifo.get_allocator().state()->fresh();
        }
        return fresh;
    }

    /** Heap blocks recycled from the pools instead of the heap. */
    std::uint64_t
    pool_reused() const
    {
        std::uint64_t reused =
            fifo_.get_allocator().state()->reused() +
            per_flow_.get_allocator().state()->reused();
        for (const auto& [flow, fifo] : per_flow_) {
            reused += fifo.get_allocator().state()->reused();
        }
        return reused;
    }

  private:
    /**
     * Packets are ~half a KiB of inline state, so a deque block holds
     * one: without pooling every push/pop pair is a block alloc/free.
     */
    using PacketDeque =
        std::deque<net::TraversalPacket,
                   PoolAllocator<net::TraversalPacket>>;

    /** The scheduling key: origin client (kFairShare) or tenant
     *  (kWeightedDrr). */
    std::uint32_t flow_key(const net::TraversalPacket& packet) const;

    /** WDRR quantum of @p flow (its tenant weight; 1 without QoS). */
    std::uint32_t quantum_of(std::uint32_t flow) const;

    SchedPolicy policy_;
    std::size_t size_ = 0;
    PacketDeque fifo_;
    /** Non-FIFO policies: one FIFO per flow. */
    std::map<std::uint32_t, PacketDeque, std::less<std::uint32_t>,
             PoolAllocator<std::pair<const std::uint32_t, PacketDeque>>>
        per_flow_;
    /** Flows with queued work, in service order (see file comment). */
    std::deque<std::uint32_t> ring_;
    /** kWeightedDrr: remaining deficit of each flow's current round.
     *  Erased with the flow, so re-arrival starts a fresh round. */
    std::map<std::uint32_t, std::uint32_t> deficit_;
    const serve::QosController* qos_ = nullptr;
};

}  // namespace pulse::accel

#endif  // PULSE_ACCEL_ADMISSION_QUEUE_H
