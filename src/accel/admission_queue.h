/**
 * @file
 * Policy-driven admission queue for the accelerator scheduler.
 *
 * The paper's scheduler admits pending traversal requests in FIFO
 * order; its supplementary material (section B) proposes extending the
 * signal-driven scheduler with fairness/isolation policies for
 * multi-tenant memory nodes. This queue implements both: kFifo
 * (arrival order) and kFairShare (round-robin across origin clients,
 * so one tenant's flood cannot starve another's requests).
 */
#ifndef PULSE_ACCEL_ADMISSION_QUEUE_H
#define PULSE_ACCEL_ADMISSION_QUEUE_H

#include <deque>
#include <map>

#include "accel/accel_config.h"
#include "net/packet.h"

namespace pulse::accel {

/** Bounded, policy-driven request queue. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(SchedPolicy policy);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Enqueue a request (caller enforces the capacity bound). */
    void push(net::TraversalPacket&& packet);

    /** Dequeue the next request per the policy. empty() must be
     *  false. */
    net::TraversalPacket pop();

  private:
    SchedPolicy policy_;
    std::size_t size_ = 0;
    std::deque<net::TraversalPacket> fifo_;
    /** kFairShare: one FIFO per origin client + round-robin cursor. */
    std::map<ClientId, std::deque<net::TraversalPacket>> per_client_;
    ClientId cursor_ = 0;
};

}  // namespace pulse::accel

#endif  // PULSE_ACCEL_ADMISSION_QUEUE_H
