/**
 * @file
 * Policy-driven admission queue for the accelerator scheduler.
 *
 * The paper's scheduler admits pending traversal requests in FIFO
 * order; its supplementary material (section B) proposes extending the
 * signal-driven scheduler with fairness/isolation policies for
 * multi-tenant memory nodes. This queue implements both: kFifo
 * (arrival order) and kFairShare (round-robin across origin clients,
 * so one tenant's flood cannot starve another's requests).
 */
#ifndef PULSE_ACCEL_ADMISSION_QUEUE_H
#define PULSE_ACCEL_ADMISSION_QUEUE_H

#include <deque>
#include <map>

#include "accel/accel_config.h"
#include "common/pool_allocator.h"
#include "net/packet.h"

namespace pulse::accel {

/** Bounded, policy-driven request queue. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(SchedPolicy policy);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Enqueue a request (caller enforces the capacity bound). */
    void push(net::TraversalPacket&& packet);

    /** Dequeue the next request per the policy. empty() must be
     *  false. */
    net::TraversalPacket pop();

    /** Heap blocks the backing pools had to allocate (bench_wallclock
     *  attribution: steady state should add ~none). */
    std::uint64_t
    pool_fresh() const
    {
        std::uint64_t fresh = fifo_.get_allocator().state()->fresh() +
                              per_client_.get_allocator().state()->fresh();
        for (const auto& [client, fifo] : per_client_) {
            fresh += fifo.get_allocator().state()->fresh();
        }
        return fresh;
    }

    /** Heap blocks recycled from the pools instead of the heap. */
    std::uint64_t
    pool_reused() const
    {
        std::uint64_t reused =
            fifo_.get_allocator().state()->reused() +
            per_client_.get_allocator().state()->reused();
        for (const auto& [client, fifo] : per_client_) {
            reused += fifo.get_allocator().state()->reused();
        }
        return reused;
    }

  private:
    /**
     * Packets are ~half a KiB of inline state, so a deque block holds
     * one: without pooling every push/pop pair is a block alloc/free.
     */
    using PacketDeque =
        std::deque<net::TraversalPacket,
                   PoolAllocator<net::TraversalPacket>>;

    SchedPolicy policy_;
    std::size_t size_ = 0;
    PacketDeque fifo_;
    /** kFairShare: one FIFO per origin client + round-robin cursor. */
    std::map<ClientId, PacketDeque, std::less<ClientId>,
             PoolAllocator<std::pair<const ClientId, PacketDeque>>>
        per_client_;
    ClientId cursor_ = 0;
};

}  // namespace pulse::accel

#endif  // PULSE_ACCEL_ADMISSION_QUEUE_H
