/**
 * @file
 * Configuration for the pulse accelerator model.
 *
 * Defaults reproduce the paper's prototype (sections 6 and 7.2 / Fig. 9):
 * two cores per memory node (one per memory channel), eta = 1 (one logic
 * pipeline and two workspaces per memory pipeline), 430 ns network-stack
 * processing, 4 ns scheduler dispatch, ~120 ns memory-pipeline latency
 * per aggregated load, and ~1.17 ns per logic instruction (a 6-
 * instruction hash-table iteration costs the paper's 7 ns).
 */
#ifndef PULSE_ACCEL_ACCEL_CONFIG_H
#define PULSE_ACCEL_ACCEL_CONFIG_H

#include <cstdint>

#include "common/units.h"

namespace pulse::accel {

/**
 * Admission policy of the accelerator scheduler (the supplementary
 * material's multi-tenancy extension: the section 4.2.3 scheduler is
 * deliberately signal-driven so richer policies can slot in).
 */
enum class SchedPolicy : std::uint8_t {
    /** Arrival order, regardless of who sent the request (paper). */
    kFifo,
    /**
     * Round-robin across origin clients: a tenant flooding the node
     * cannot starve another tenant's requests (supp. section B's
     * fairness-and-isolation proposal).
     */
    kFairShare,
    /**
     * Weighted deficit round-robin across *tenants* (serving plane,
     * src/serve): each tenant's queued requests are served in
     * proportion to its configured QoS weight. Falls back to weight 1
     * per tenant — i.e. per-tenant kFairShare — when no QosController
     * is attached.
     */
    kWeightedDrr,
};

/** Tunable parameters of one memory node's accelerator. */
struct AccelConfig
{
    /** Cores per accelerator (paper: one per memory channel). */
    std::uint32_t num_cores = 2;

    /**
     * eta: logic pipelines per memory pipeline (paper sets 1 after
     * measuring t_c <= t_d for all surveyed data structures).
     */
    std::uint32_t eta_pipelines = 1;

    /**
     * Workspaces per logic pipeline. The paper's core multiplexes two
     * iterators per logic pipeline (Fig. 3c) — enough to saturate the
     * memory pipeline when loads are latency-bound. Because the real
     * board pipelines AXI bursts (2 cores saturate 25 GB/s, supp.
     * Fig. 1b), throughput-oriented runs raise this so enough loads are
     * in flight to cover the 120 ns latency; see DESIGN.md.
     */
    std::uint32_t workspaces_per_logic = 2;

    /** Hardware network stack parse/deparse latency per packet. */
    Time net_stack_latency = nanos(430.0);

    /** Scheduler dispatch latency per request. */
    Time scheduler_latency = nanos(4.0);

    /**
     * Memory-pipeline latency per aggregated load: TCAM translation +
     * protection + DRAM access (t_d). Bandwidth occupancy is modelled
     * by the node's memory channels on top of this.
     */
    Time mem_pipeline_latency = nanos(120.0);

    /** Logic-pipeline time per executed instruction (t_i). */
    Time logic_time_per_insn = nanos(7.0 / 6.0);

    /**
     * Pipelining depth of the logic datapath: t_c is the *latency* one
     * iterator observes, but the FPGA pipeline admits a new iterator
     * every t_c / depth (initiation interval). Without this, a single
     * eta=1 logic pipeline could never keep the memory channels >90%
     * utilized for compute-heavier programs (TSV's eta ~ 0.9), which
     * the paper's Fig. 6 shows it does.
     */
    std::uint32_t logic_pipeline_depth = 8;

    /**
     * When true (pulse), a traversal whose next pointer is not local is
     * sent to the switch for re-routing to the owning node (section 5).
     * When false (the pulse-ACC ablation of section 7.2), it returns to
     * the origin client, which re-issues the request.
     */
    bool forward_via_switch = true;

    /** TCAM capacity (range entries) for local translations. */
    std::uint32_t tcam_entries = 64;

    /** Pending-request queue bound; beyond this, requests are dropped
     *  (the offload engine's retransmission recovers them). */
    std::uint32_t max_pending = 1u << 16;

    /** Admission policy for queued requests. */
    SchedPolicy sched_policy = SchedPolicy::kFifo;

    /**
     * Duplicate-suppression window per client (entries in the dedup
     * SRAM): retransmitted or fault-duplicated packets for a visit
     * that already executed get the recorded response replayed instead
     * of re-executing — required for exactly-once semantics of
     * traversals with stores/CAS. 0 disables the window (pre-reliable
     * behaviour: duplicates re-execute).
     */
    std::uint32_t replay_window_entries = 1u << 12;

    /** Hard cap on iterations per visit, independent of program caps. */
    std::uint32_t max_iters_cap = 1u << 20;

    /** Total workspaces per core. */
    std::uint32_t
    workspaces_per_core() const
    {
        return eta_pipelines * workspaces_per_logic;
    }
};

}  // namespace pulse::accel

#endif  // PULSE_ACCEL_ACCEL_CONFIG_H
