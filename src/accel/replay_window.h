/**
 * @file
 * Duplicate-suppression window for the accelerator's network stack.
 *
 * The offload engine retransmits requests it believes lost, so the same
 * (request id, visit) can arrive at an accelerator more than once — via
 * a retransmitted request, a fault-injected duplicate, or a client
 * resend racing a slow response. Re-executing is harmless for read-only
 * traversals but wrong for programs with stores/CAS (a retransmitted
 * increment must not increment twice). The window makes execution
 * exactly-once per visit: the first arrival executes, concurrent
 * duplicates are suppressed, and duplicates of a completed visit get
 * the cached response replayed (which also repairs dropped inter-node
 * forwards, since the cached packet is the forward).
 *
 * A "visit" is (RequestId, iterations_done at arrival): iterations_done
 * grows monotonically along a traversal, so each legitimate revisit of
 * a node by a multi-hop traversal is a distinct key, while byte-for-byte
 * duplicates collide. Entries are evicted FIFO per client once the
 * per-client budget is exceeded, bounding memory like the real
 * accelerator's fixed-size reorder/dedup SRAM.
 */
#ifndef PULSE_ACCEL_REPLAY_WINDOW_H
#define PULSE_ACCEL_REPLAY_WINDOW_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/pool_allocator.h"
#include "common/types.h"
#include "net/packet.h"

namespace pulse::accel {

/** Bounded exactly-once execution window (one per accelerator). */
class ReplayWindow
{
  public:
    /** One traversal visit: request id + iterations at arrival. */
    struct Key
    {
        RequestId id;
        std::uint64_t visit = 0;

        friend bool operator==(const Key&, const Key&) = default;
    };

    /** Hash for Key (public: the invariant checker keys sets by it). */
    struct KeyHash
    {
        std::size_t
        operator()(const Key& key) const noexcept
        {
            const std::size_t h = std::hash<RequestId>()(key.id);
            // splitmix-style avalanche of the visit into the id hash
            return h ^ (key.visit + 0x9e3779b97f4a7c15ull + (h << 6) +
                        (h >> 2));
        }
    };

    /** What the window knows about an arriving packet's visit. */
    enum class Verdict : std::uint8_t
    {
        kNew,         ///< never seen: execute it (and mark in progress)
        kInProgress,  ///< executing right now: suppress the duplicate
        kCached,      ///< finished: replay the recorded response
    };

    /** @param per_client_entries FIFO budget per client (0 disables). */
    explicit ReplayWindow(std::size_t per_client_entries)
        : capacity_(per_client_entries)
    {
    }

    bool enabled() const { return capacity_ > 0; }

    /** Classify @p key without modifying the window. */
    Verdict
    classify(const Key& key) const
    {
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
            return Verdict::kNew;
        }
        return it->second.done ? Verdict::kCached
                               : Verdict::kInProgress;
    }

    /** Begin tracking @p key as executing (evicts FIFO if needed). */
    void mark_in_progress(const Key& key);

    /**
     * Drop @p key without recording a response (admission-queue
     * overflow: the packet was never executed, so a retransmit must be
     * allowed to execute later).
     */
    void unmark(const Key& key);

    /** Record the outgoing packet for @p key; later dups replay it. */
    void record_response(const Key& key, net::TraversalPacket response);

    /**
     * Erase @p key entirely, even if completed. Used when a cached
     * response must not be replayed: a zero-progress kNotLocal bounce
     * is a routing decision, not a side effect, and replaying it from
     * the node that now *owns* the data (slab migrated here, or the
     * entry was absorbed at a cutover) would ping-pong the packet
     * between switch and accelerator forever. The caller re-executes
     * the visit under current routes instead.
     */
    void forget(const Key& key);

    /** Cached response for @p key (nullptr unless Verdict::kCached). */
    const net::TraversalPacket* cached_response(const Key& key) const;

    /**
     * Copy every entry of @p donor into this window (migration
     * cutover: the reconfiguration message carries the source's replay
     * digest, so the exactly-once domain moves with the data — a
     * retransmitted request that chases a migrated slab to its new
     * owner replays the cached response instead of re-executing).
     * Entries this window already holds are kept as-is. Donor entries
     * still executing are absorbed as in-progress and marked handed
     * off in @p donor, so the donor's eventual completion (or
     * admission drop) can be mirrored here via import_completion /
     * unmark. Deterministic: clients ascending, FIFO within a client.
     * Returns the number of entries copied.
     */
    std::size_t absorb_from(ReplayWindow& donor);

    /**
     * Complete an absorbed in-progress entry with a response that was
     * produced on another node. No-op unless @p key is held here and
     * still in progress.
     */
    void import_completion(const Key& key,
                           const net::TraversalPacket& response);

    /**
     * True exactly once after @p key was handed off by absorb_from and
     * has not been consumed yet; clears the mark. The executing node
     * calls this when the visit completes or is dropped, to know
     * whether other windows hold an absorbed copy needing an update.
     */
    bool consume_handoff(const Key& key)
    {
        return handed_off_.erase(key) > 0;
    }

    std::size_t size() const { return entries_.size(); }

    /** Heap blocks the entry/order pools had to allocate (bench
     *  attribution: plateaus once the FIFO budget is reached). */
    std::uint64_t
    pool_fresh() const
    {
        std::uint64_t fresh = entries_.get_allocator().state()->fresh();
        for (const auto& [client, order] : order_) {
            fresh += order.get_allocator().state()->fresh();
        }
        return fresh;
    }

    /** Heap blocks recycled from the pools instead of the heap. */
    std::uint64_t
    pool_reused() const
    {
        std::uint64_t reused =
            entries_.get_allocator().state()->reused();
        for (const auto& [client, order] : order_) {
            reused += order.get_allocator().state()->reused();
        }
        return reused;
    }

  private:
    struct Entry
    {
        bool done = false;
        net::TraversalPacket response;
    };

    void evict_for(ClientId client);

    std::size_t capacity_;
    /**
     * Once the FIFO budget is reached, every visit is one insert plus
     * one eviction — pooled node recycling keeps that churn off the
     * heap (each Entry embeds a ~half-KiB cached packet).
     */
    std::unordered_map<Key, Entry, KeyHash, std::equal_to<Key>,
                       PoolAllocator<std::pair<const Key, Entry>>>
        entries_;
    /** Insertion order per client for FIFO eviction. */
    std::unordered_map<ClientId, std::deque<Key, PoolAllocator<Key>>>
        order_;
    /** In-progress visits absorbed elsewhere at a migration cutover;
     *  their completion must be mirrored to the absorbing windows. */
    std::unordered_set<Key, KeyHash> handed_off_;
};

}  // namespace pulse::accel

#endif  // PULSE_ACCEL_REPLAY_WINDOW_H
