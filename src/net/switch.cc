#include "net/switch.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::net {

void
SwitchTable::add_rule(const SwitchRule& rule)
{
    PULSE_ASSERT(rule.size > 0, "empty switch rule");
    rules_.push_back(rule);
}

bool
SwitchTable::remove_rule(NodeId node)
{
    for (auto it = rules_.begin(); it != rules_.end(); ++it) {
        if (it->node == node) {
            rules_.erase(it);
            return true;
        }
    }
    return false;
}

void
SwitchTable::add_overlay_rule(const SwitchRule& rule)
{
    PULSE_ASSERT(rule.size > 0, "empty switch overlay rule");
    auto pos = std::lower_bound(
        overlay_.begin(), overlay_.end(), rule.base,
        [](const SwitchRule& r, VirtAddr va) { return r.base < va; });
    if (pos != overlay_.begin()) {
        SwitchRule& prev = *(pos - 1);
        PULSE_ASSERT(prev.base + prev.size <= rule.base,
                     "overlapping switch overlay rule");
        if (prev.node == rule.node && prev.base + prev.size == rule.base) {
            prev.size += rule.size;
            if (pos != overlay_.end() && pos->node == prev.node &&
                prev.base + prev.size == pos->base) {
                prev.size += pos->size;
                overlay_.erase(pos);
            }
            return;
        }
    }
    if (pos != overlay_.end()) {
        PULSE_ASSERT(rule.base + rule.size <= pos->base,
                     "overlapping switch overlay rule");
        if (pos->node == rule.node && rule.base + rule.size == pos->base) {
            pos->base = rule.base;
            pos->size += rule.size;
            return;
        }
    }
    overlay_.insert(pos, rule);
}

void
SwitchTable::clear_overlay()
{
    overlay_.clear();
}

std::optional<NodeId>
SwitchTable::lookup(VirtAddr va) const
{
    // Overlay rules are carved out of home regions and more specific:
    // they win the match-action lookup.
    if (!overlay_.empty()) {
        auto pos = std::upper_bound(
            overlay_.begin(), overlay_.end(), va,
            [](VirtAddr v, const SwitchRule& r) { return v < r.base; });
        if (pos != overlay_.begin() && (pos - 1)->matches(va)) {
            return (pos - 1)->node;
        }
    }
    for (const SwitchRule& rule : rules_) {
        if (rule.matches(va)) {
            return rule.node;
        }
    }
    return std::nullopt;
}

RouteDecision
SwitchTable::route(const TraversalPacket& packet) const
{
    const bool wants_memory =
        !packet.is_response ||
        (packet.status == isa::TraversalStatus::kNotLocal &&
         packet.allow_switch_continuation);
    if (wants_memory) {
        if (const auto node = lookup(packet.cur_ptr)) {
            return {EndpointAddr::mem_node(*node), false};
        }
        // Invalid pointer: deliver to the origin client as a fault
        // response (the network layer patches the status).
        return {EndpointAddr::client(packet.origin), true};
    }
    return {EndpointAddr::client(packet.origin), false};
}

namespace {

void
save_rules(StateWriter& writer, const std::vector<SwitchRule>& rules)
{
    writer.put_u64(rules.size());
    for (const SwitchRule& rule : rules) {
        writer.put_u64(rule.base);
        writer.put_u64(rule.size);
        writer.put_u32(rule.node);
    }
}

std::vector<SwitchRule>
load_rules(StateReader& reader)
{
    std::vector<SwitchRule> rules(reader.get_u64());
    for (SwitchRule& rule : rules) {
        rule.base = reader.get_u64();
        rule.size = reader.get_u64();
        rule.node = reader.get_u32();
    }
    return rules;
}

}  // namespace

void
SwitchTable::save_state(StateWriter& writer) const
{
    writer.put_tag("SWCH");
    save_rules(writer, rules_);
    save_rules(writer, overlay_);
}

void
SwitchTable::load_state(StateReader& reader)
{
    reader.expect_tag("SWCH");
    rules_ = load_rules(reader);
    overlay_ = load_rules(reader);
}

}  // namespace pulse::net
