#include "net/switch.h"

#include "common/logging.h"

namespace pulse::net {

void
SwitchTable::add_rule(const SwitchRule& rule)
{
    PULSE_ASSERT(rule.size > 0, "empty switch rule");
    rules_.push_back(rule);
}

bool
SwitchTable::remove_rule(NodeId node)
{
    for (auto it = rules_.begin(); it != rules_.end(); ++it) {
        if (it->node == node) {
            rules_.erase(it);
            return true;
        }
    }
    return false;
}

std::optional<NodeId>
SwitchTable::lookup(VirtAddr va) const
{
    for (const SwitchRule& rule : rules_) {
        if (rule.matches(va)) {
            return rule.node;
        }
    }
    return std::nullopt;
}

RouteDecision
SwitchTable::route(const TraversalPacket& packet) const
{
    const bool wants_memory =
        !packet.is_response ||
        (packet.status == isa::TraversalStatus::kNotLocal &&
         packet.allow_switch_continuation);
    if (wants_memory) {
        if (const auto node = lookup(packet.cur_ptr)) {
            return {EndpointAddr::mem_node(*node), false};
        }
        // Invalid pointer: deliver to the origin client as a fault
        // response (the network layer patches the status).
        return {EndpointAddr::client(packet.origin), true};
    }
    return {EndpointAddr::client(packet.origin), false};
}

}  // namespace pulse::net
