#include "net/network.h"

#include <utility>

#include "common/logging.h"

namespace pulse::net {

Network::Network(sim::EventQueue& queue, const NetworkConfig& config)
    : queue_(queue), config_(config), loss_rng_(config.seed)
{
    PULSE_ASSERT(config.num_clients > 0, "network needs a client");
    PULSE_ASSERT(config.num_mem_nodes > 0, "network needs a memory node");
    const auto make_port = [&] {
        Port port;
        port.to_switch = std::make_unique<Link>(config.link_bandwidth,
                                                config.link_propagation);
        port.from_switch = std::make_unique<Link>(config.link_bandwidth,
                                                  config.link_propagation);
        return port;
    };
    for (std::uint32_t i = 0; i < config.num_clients; i++) {
        client_ports_.push_back(make_port());
    }
    for (std::uint32_t i = 0; i < config.num_mem_nodes; i++) {
        node_ports_.push_back(make_port());
    }
}

Network::Port&
Network::port(EndpointAddr addr)
{
    auto& ports = addr.kind == EndpointAddr::Kind::kClient
                      ? client_ports_
                      : node_ports_;
    PULSE_ASSERT(addr.index < ports.size(), "bad endpoint index %u",
                 addr.index);
    return ports[addr.index];
}

const Network::Port&
Network::port(EndpointAddr addr) const
{
    return const_cast<Network*>(this)->port(addr);
}

Time
Network::nic_overhead(EndpointAddr addr) const
{
    return addr.kind == EndpointAddr::Kind::kClient
               ? config_.client_nic_overhead
               : config_.mem_node_nic_overhead;
}

void
Network::attach_traversal_sink(EndpointAddr addr, TraversalSink sink)
{
    port(addr).traversal_sink = std::move(sink);
}

Time
Network::uplink(EndpointAddr from, Bytes size)
{
    Port& p = port(from);
    p.tx_bytes += size;
    const Time ready = queue_.now() + nic_overhead(from);
    return p.to_switch->transmit(ready, size);
}

Time
Network::downlink(EndpointAddr to, Time at_switch, Bytes size)
{
    Port& p = port(to);
    p.rx_bytes += size;
    const Time arrival = p.from_switch->transmit(at_switch, size);
    return arrival + nic_overhead(to);
}

void
Network::send_traversal(EndpointAddr from, TraversalPacket packet)
{
    const Bytes size = packet.wire_size();
    const Time at_switch = uplink(from, size) + config_.switch_latency;

    // The switch routes at at_switch; model the decision now (state at
    // decision time equals state now: rules only change between runs)
    // and schedule delivery.
    RouteDecision decision = table_.route(packet);
    routed_++;
    if (decision.invalid_pointer) {
        packet.is_response = true;
        packet.status = isa::TraversalStatus::kMemFault;
    } else if (decision.destination.kind == EndpointAddr::Kind::kMemNode &&
               packet.is_response) {
        // Re-routed continuation: arrives at the next node as a request
        // (paper section 5: response becomes request).
        packet.is_response = false;
        packet.status = isa::TraversalStatus::kDone;
    }

    if (config_.loss_probability > 0.0 &&
        loss_rng_.next_bool(config_.loss_probability)) {
        dropped_++;
        return;
    }

    const Time delivery = downlink(decision.destination, at_switch, size);
    Port& dest = port(decision.destination);
    PULSE_ASSERT(static_cast<bool>(dest.traversal_sink),
                 "no traversal sink at destination endpoint");
    TraversalSink& sink = dest.traversal_sink;
    queue_.schedule_at(delivery,
                       [&sink, packet = std::move(packet)]() mutable {
                           sink(std::move(packet));
                       });
}

void
Network::send_message(EndpointAddr from, EndpointAddr to, Bytes size,
                      MessageSink deliver)
{
    const Time at_switch = uplink(from, size) + config_.switch_latency;
    routed_++;
    if (config_.loss_probability > 0.0 &&
        loss_rng_.next_bool(config_.loss_probability)) {
        dropped_++;
        return;
    }
    const Time delivery = downlink(to, at_switch, size);
    queue_.schedule_at(delivery, std::move(deliver));
}

Bytes
Network::bytes_sent_by(EndpointAddr addr) const
{
    return port(addr).tx_bytes;
}

Bytes
Network::bytes_received_by(EndpointAddr addr) const
{
    return port(addr).rx_bytes;
}

void
Network::reset_stats()
{
    for (auto* ports : {&client_ports_, &node_ports_}) {
        for (Port& p : *ports) {
            p.tx_bytes = 0;
            p.rx_bytes = 0;
            p.to_switch->reset_stats();
            p.from_switch->reset_stats();
        }
    }
    dropped_ = 0;
    routed_ = 0;
}

}  // namespace pulse::net
