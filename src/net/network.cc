#include "net/network.h"

#include <utility>

#include "common/logging.h"

namespace pulse::net {
namespace {

trace::Location
location_of(EndpointAddr addr)
{
    return addr.kind == EndpointAddr::Kind::kClient
               ? trace::Location::kClient
               : trace::Location::kMemNode;
}

}  // namespace

Network::Network(sim::EventQueue& queue, const NetworkConfig& config)
    : queue_(queue), config_(config), loss_rng_(config.seed)
{
    PULSE_ASSERT(config.num_clients > 0, "network needs a client");
    PULSE_ASSERT(config.num_mem_nodes > 0, "network needs a memory node");
    const auto make_port = [&] {
        Port port;
        port.to_switch = std::make_unique<Link>(config.link_bandwidth,
                                                config.link_propagation);
        port.from_switch = std::make_unique<Link>(config.link_bandwidth,
                                                  config.link_propagation);
        return port;
    };
    for (std::uint32_t i = 0; i < config.num_clients; i++) {
        client_ports_.push_back(make_port());
    }
    for (std::uint32_t i = 0; i < config.num_mem_nodes; i++) {
        node_ports_.push_back(make_port());
    }
}

Network::Port&
Network::port(EndpointAddr addr)
{
    auto& ports = addr.kind == EndpointAddr::Kind::kClient
                      ? client_ports_
                      : node_ports_;
    PULSE_ASSERT(addr.index < ports.size(), "bad endpoint index %u",
                 addr.index);
    return ports[addr.index];
}

const Network::Port&
Network::port(EndpointAddr addr) const
{
    return const_cast<Network*>(this)->port(addr);
}

Time
Network::nic_overhead(EndpointAddr addr) const
{
    return addr.kind == EndpointAddr::Kind::kClient
               ? config_.client_nic_overhead
               : config_.mem_node_nic_overhead;
}

void
Network::attach_traversal_sink(EndpointAddr addr, TraversalSink sink)
{
    port(addr).traversal_sink = std::move(sink);
}

Time
Network::uplink(EndpointAddr from, Bytes size)
{
    Port& p = port(from);
    p.tx_bytes += size;
    const Time ready = queue_.now() + nic_overhead(from);
    return p.to_switch->transmit(ready, size);
}

Time
Network::downlink(EndpointAddr to, Time at_switch, Bytes size)
{
    Port& p = port(to);
    p.rx_bytes += size;
    const Time arrival = p.from_switch->transmit(at_switch, size);
    return arrival + nic_overhead(to);
}

Network::DeliveryPlan
Network::plan_delivery(EndpointAddr from, EndpointAddr to)
{
    DeliveryPlan plan;
    // Legacy uniform loss knob (independent of the fault plane).
    if (config_.loss_probability > 0.0 &&
        loss_rng_.next_bool(config_.loss_probability)) {
        plan.drop = true;
        dropped_++;
        return plan;
    }
    if (fault_plane_ == nullptr || !fault_plane_->enabled()) {
        return plan;
    }
    const auto merge = [&plan](const faults::PacketFate& fate) {
        plan.drop |= fate.drop;
        plan.duplicate |= fate.duplicate;
        if (fate.corrupt) {
            plan.corrupt = true;
            plan.corrupt_mask = fate.corrupt_mask;
        }
        plan.extra_delay += fate.extra_delay;
    };
    merge(fault_plane_->judge(from, faults::LinkDir::kToSwitch));
    if (!plan.drop) {
        // Only a packet that survived the uplink reaches the downlink.
        merge(fault_plane_->judge(to, faults::LinkDir::kFromSwitch));
    }
    if (plan.drop) {
        dropped_++;
    }
    return plan;
}

bool
Network::source_dark(EndpointAddr addr)
{
    return fault_plane_ != nullptr && fault_plane_->enabled() &&
           addr.kind == EndpointAddr::Kind::kMemNode &&
           fault_plane_->node_dark(addr.index, queue_.now());
}

void
Network::deliver_traversal(EndpointAddr to, Time at_switch, Bytes size,
                           TraversalPacket packet)
{
    Time delivery = downlink(to, at_switch, size);
    if (tracer_ != nullptr && tracer_->enabled() &&
        packet.trace.sampled) {
        // Downlink span covers serialization + propagation + NIC (and
        // any stall-hold extension applied below is intentionally not
        // billed to the network: the fault plane accounts it).
        tracer_->record({packet.id, trace::SpanKind::kNicDownlink,
                         location_of(to), to.index, at_switch,
                         delivery - at_switch,
                         static_cast<std::uint64_t>(size)});
    }
    if (fault_plane_ != nullptr && fault_plane_->enabled() &&
        to.kind == EndpointAddr::Kind::kMemNode) {
        if (fault_plane_->node_dark(to.index, delivery)) {
            fault_plane_->count_blackout_drop();
            flow_.delivery_blackout++;
            return;
        }
        const Time release =
            fault_plane_->node_release(to.index, delivery);
        if (release > delivery) {
            // Stalled node: the NIC holds the packet until the stall
            // window ends (think PFC pause / frozen host).
            fault_plane_->count_stall_hold();
            delivery = release;
        }
    }
    Port& dest = port(to);
    PULSE_ASSERT(static_cast<bool>(dest.traversal_sink),
                 "no traversal sink at destination endpoint");
    TraversalSink& sink = dest.traversal_sink;
    queue_.schedule_at(delivery, [this, &sink,
                                  packet = std::move(packet)]() mutable {
        if (!verify_packet(packet)) {
            // Receiving NIC: UDP checksum mismatch, discard silently.
            checksum_drops_++;
            flow_.checksum_dropped++;
            return;
        }
        flow_.delivered++;
        sink(std::move(packet));
    });
}

void
Network::send_traversal(EndpointAddr from, TraversalPacket packet)
{
    flow_.injected++;
    if (source_dark(from)) {
        // A blacked-out node transmits nothing.
        fault_plane_->count_blackout_drop();
        flow_.source_dark++;
        return;
    }
    if (packet.checksum == 0) {
        // Sender NIC seals the header (models UDP checksum offload).
        seal_packet(packet);
    }
    const Bytes size = packet.wire_size();
    const Time uplink_done = uplink(from, size);
    const Time at_switch = uplink_done + config_.switch_latency;
    if (tracer_ != nullptr && tracer_->enabled() &&
        packet.trace.sampled) {
        tracer_->record({packet.id, trace::SpanKind::kNicUplink,
                         location_of(from), from.index, queue_.now(),
                         uplink_done - queue_.now(),
                         static_cast<std::uint64_t>(size)});
        tracer_->record({packet.id, trace::SpanKind::kSwitchRoute,
                         trace::Location::kSwitch, 0, uplink_done,
                         config_.switch_latency,
                         static_cast<std::uint64_t>(size)});
    }

    // The switch routes at at_switch; model the decision now. Live
    // migration can flip a rule in the window between decision and
    // delivery, making the decision stale — that is safe: the packet
    // lands on a node whose TCAM was punched, misses, and returns
    // kNotLocal, which re-routes it through the updated table (the
    // same backstop that covers packets already in flight).
    RouteDecision decision = table_.route(packet);
    routed_++;
    if (decision.invalid_pointer) {
        packet.is_response = true;
        packet.status = isa::TraversalStatus::kMemFault;
    } else if (decision.destination.kind == EndpointAddr::Kind::kMemNode &&
               packet.is_response) {
        // Re-routed continuation: arrives at the next node as a request
        // (paper section 5: response becomes request).
        packet.is_response = false;
        packet.status = isa::TraversalStatus::kDone;
    }

    DeliveryPlan plan = plan_delivery(from, decision.destination);
    if (plan.drop) {
        flow_.plan_dropped++;
        return;
    }
    if (plan.corrupt) {
        // In-flight bit flips on a sealed field; routing already
        // happened (per-hop link CRCs pass, the end-to-end checksum
        // catches it at the receiving NIC).
        packet.cur_ptr ^= plan.corrupt_mask;
    }
    if (plan.duplicate) {
        flow_.duplicated++;
        TraversalPacket copy = packet;
        deliver_traversal(decision.destination,
                          at_switch + plan.extra_delay, size,
                          std::move(copy));
    }
    deliver_traversal(decision.destination, at_switch + plan.extra_delay,
                      size, std::move(packet));
}

void
Network::send_message(EndpointAddr from, EndpointAddr to, Bytes size,
                      MessageSink deliver)
{
    if (source_dark(from)) {
        fault_plane_->count_blackout_drop();
        return;
    }
    const Time at_switch = uplink(from, size) + config_.switch_latency;
    routed_++;
    DeliveryPlan plan = plan_delivery(from, to);
    if (plan.drop) {
        return;
    }
    const auto schedule_copy = [&](MessageSink sink) {
        Time delivery =
            downlink(to, at_switch + plan.extra_delay, size);
        if (fault_plane_ != nullptr && fault_plane_->enabled() &&
            to.kind == EndpointAddr::Kind::kMemNode) {
            if (fault_plane_->node_dark(to.index, delivery)) {
                fault_plane_->count_blackout_drop();
                return;
            }
            const Time release =
                fault_plane_->node_release(to.index, delivery);
            if (release > delivery) {
                fault_plane_->count_stall_hold();
                delivery = release;
            }
        }
        if (plan.corrupt) {
            // The message still burns downlink bandwidth but the
            // receiving NIC discards it (bad checksum).
            checksum_drops_++;
            return;
        }
        queue_.schedule_at(delivery, std::move(sink));
    };
    if (plan.duplicate) {
        schedule_copy(deliver);
    }
    schedule_copy(std::move(deliver));
}

Bytes
Network::bytes_sent_by(EndpointAddr addr) const
{
    return port(addr).tx_bytes;
}

Bytes
Network::bytes_received_by(EndpointAddr addr) const
{
    return port(addr).rx_bytes;
}

void
Network::reset_stats()
{
    for (auto* ports : {&client_ports_, &node_ports_}) {
        for (Port& p : *ports) {
            p.tx_bytes = 0;
            p.rx_bytes = 0;
            p.to_switch->reset_stats();
            p.from_switch->reset_stats();
        }
    }
    dropped_ = 0;
    routed_ = 0;
    checksum_drops_ = 0;
}

void
Network::save_state(StateWriter& writer) const
{
    writer.put_tag("NETW");
    std::uint64_t rng_state[4];
    loss_rng_.save_state(rng_state);
    for (const std::uint64_t word : rng_state) {
        writer.put_u64(word);
    }
    writer.put_u64(dropped_);
    writer.put_u64(routed_);
    writer.put_u64(checksum_drops_);
    writer.put_u64(flow_.injected);
    writer.put_u64(flow_.duplicated);
    writer.put_u64(flow_.delivered);
    writer.put_u64(flow_.source_dark);
    writer.put_u64(flow_.plan_dropped);
    writer.put_u64(flow_.delivery_blackout);
    writer.put_u64(flow_.checksum_dropped);
    for (const auto* ports : {&client_ports_, &node_ports_}) {
        writer.put_u64(ports->size());
        for (const Port& p : *ports) {
            for (const Link* link :
                 {p.to_switch.get(), p.from_switch.get()}) {
                writer.put_i64(link->busy_until());
                writer.put_u64(link->bytes_sent());
                writer.put_u64(link->packets_sent());
                writer.put_i64(link->busy_time());
            }
            writer.put_u64(p.tx_bytes);
            writer.put_u64(p.rx_bytes);
        }
    }
    table_.save_state(writer);
}

void
Network::load_state(StateReader& reader)
{
    reader.expect_tag("NETW");
    std::uint64_t rng_state[4];
    for (std::uint64_t& word : rng_state) {
        word = reader.get_u64();
    }
    loss_rng_.restore_state(rng_state);
    dropped_ = reader.get_u64();
    routed_ = reader.get_u64();
    checksum_drops_ = reader.get_u64();
    flow_.injected = reader.get_u64();
    flow_.duplicated = reader.get_u64();
    flow_.delivered = reader.get_u64();
    flow_.source_dark = reader.get_u64();
    flow_.plan_dropped = reader.get_u64();
    flow_.delivery_blackout = reader.get_u64();
    flow_.checksum_dropped = reader.get_u64();
    for (auto* ports : {&client_ports_, &node_ports_}) {
        const std::uint64_t count = reader.get_u64();
        PULSE_ASSERT(count == ports->size(),
                     "checkpoint port count mismatch");
        for (Port& p : *ports) {
            for (Link* link :
                 {p.to_switch.get(), p.from_switch.get()}) {
                const Time busy_until = reader.get_i64();
                const Bytes bytes = reader.get_u64();
                const std::uint64_t packets = reader.get_u64();
                const Time busy_time = reader.get_i64();
                link->restore(busy_until, bytes, packets, busy_time);
            }
            p.tx_bytes = reader.get_u64();
            p.rx_bytes = reader.get_u64();
        }
    }
    table_.load_state(reader);
}

}  // namespace pulse::net
