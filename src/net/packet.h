/**
 * @file
 * Wire formats for pulse traversal traffic.
 *
 * pulse uses one packet format for requests and responses (paper section
 * 4.2.4): the offloaded iterator's code, cur_ptr, and scratch_pad travel
 * in every packet, so a response can be re-routed by the switch to
 * another memory node and continue executing there unchanged (section
 * 5). wire_size() gives the modelled on-the-wire footprint used for all
 * bandwidth accounting.
 */
#ifndef PULSE_NET_PACKET_H
#define PULSE_NET_PACKET_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/scratch_buffer.h"
#include "common/types.h"
#include "common/units.h"
#include "isa/codec.h"
#include "isa/traversal.h"

namespace pulse::net {

/**
 * Per-request tracing metadata carried by every traversal packet
 * (simulator-side only: contributes no wire bytes, exactly like a
 * tracing sideband an implementation would keep in host metadata).
 * `sampled` is stamped by the offload engine when the cluster's
 * tracer is enabled; instrumented components record span events only
 * for sampled packets. `queued_at` carries the admission-queue entry
 * time so the accelerator can emit a workspace-wait span on dispatch.
 */
struct TraceContext
{
    bool sampled = false;
    Time queued_at = 0;

    friend bool operator==(const TraceContext&,
                           const TraceContext&) = default;
};

/** Ethernet + IPv4 + UDP header bytes modelled per packet. */
inline constexpr Bytes kNetHeaderBytes = 42;

/** Fixed pulse packet fields: id, origin, flags, cur_ptr, iterations. */
inline constexpr Bytes kPulseHeaderBytes = 12 + 4 + 4 + 8 + 8;

/**
 * Wire bytes of a program *reference* (digest id + length) used once
 * the accelerators have the program installed. The offload engine
 * ships full code for the first few requests of each program (one
 * install per accelerator) and ids afterwards; continuations forwarded
 * between nodes carry ids only. This keeps network utilization in the
 * paper's reported 0.92-3.7% band (see DESIGN.md).
 */
inline constexpr Bytes kCodeIdBytes = 16;

/**
 * Inline fixed-capacity list of SPAWN records (fork/join extension).
 * Mirrors ScratchBuffer's design: packets are copied on every hop, so
 * the list must keep TraversalPacket trivially copyable. Capacity is
 * isa::kMaxSpawnsPerVisit — the accelerator ends the visit the moment
 * an iteration emits spawns ("spawn flush"), and verify() caps a
 * program at 16 static SPAWN sites, so one visit can never overflow
 * the list (the accelerator faults kSpawnOverflow defensively).
 */
class SpawnList
{
  public:
    static constexpr std::size_t kCapacity = isa::kMaxSpawnsPerVisit;

    bool
    push(const isa::SpawnRecord& record)
    {
        if (size_ >= kCapacity) {
            return false;
        }
        records_[size_++] = record;
        return true;
    }

    void clear() { size_ = 0; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const isa::SpawnRecord&
    operator[](std::size_t i) const
    {
        return records_[i];
    }

    const isa::SpawnRecord* begin() const { return records_.data(); }
    const isa::SpawnRecord* end() const { return records_.data() + size_; }

    /**
     * Modelled wire bytes: nothing when empty (sequential traffic is
     * byte-identical to the pre-fork format), else a 2 B count word
     * plus, per record, the start pointer (8 B), the argument window
     * descriptor (4 B) and the argument bytes actually shipped.
     */
    Bytes
    wire_bytes() const
    {
        if (size_ == 0) {
            return 0;
        }
        Bytes bytes = 2;
        for (std::size_t i = 0; i < size_; i++) {
            bytes += 12 + records_[i].arg_length;
        }
        return bytes;
    }

    friend bool
    operator==(const SpawnList& a, const SpawnList& b)
    {
        if (a.size_ != b.size_) {
            return false;
        }
        for (std::size_t i = 0; i < a.size_; i++) {
            const auto& ra = a.records_[i];
            const auto& rb = b.records_[i];
            if (ra.start_ptr != rb.start_ptr ||
                ra.arg_offset != rb.arg_offset ||
                ra.arg_length != rb.arg_length ||
                std::memcmp(ra.args, rb.args, ra.arg_length) != 0) {
                return false;
            }
        }
        return true;
    }

  private:
    std::array<isa::SpawnRecord, kCapacity> records_ = {};
    std::uint16_t size_ = 0;
};

/** Addressable endpoints in the rack. */
struct EndpointAddr
{
    enum class Kind : std::uint8_t { kClient, kMemNode };

    Kind kind = Kind::kClient;
    std::uint32_t index = 0;

    static EndpointAddr
    client(ClientId id)
    {
        return {Kind::kClient, id};
    }

    static EndpointAddr
    mem_node(NodeId id)
    {
        return {Kind::kMemNode, id};
    }

    friend bool operator==(const EndpointAddr&,
                           const EndpointAddr&) = default;
};

/**
 * One pulse traversal packet. `is_response` marks packets emitted by an
 * accelerator (traversal ended, faulted, or left the node); the switch
 * inspects status/cur_ptr to decide between delivering to the origin
 * client and re-routing to the next memory node.
 */
struct TraversalPacket
{
    RequestId id;
    ClientId origin = 0;

    /**
     * Tenant identity (serving plane, src/serve). Stamped by the
     * issuing offload engine from Operation::tenant and echoed on
     * every descendant packet (responses, forwarded continuations,
     * fork children), so QoS admission control at any memory node can
     * attribute the request. Rides the existing flags words of the
     * pulse header (a DSCP-style codepoint), so wire_size() is
     * unchanged and tenant-less traffic stays byte-identical.
     */
    std::uint32_t tenant = 0;

    bool is_response = false;
    isa::TraversalStatus status = isa::TraversalStatus::kDone;
    isa::ExecFault fault = isa::ExecFault::kNone;
    VirtAddr cur_ptr = kNullAddr;
    std::uint64_t iterations_done = 0;

    /**
     * Echo of the request's iterations_done at the issuing client
     * (section 4.1's request-id mechanism extended for reliable
     * delivery): every response and forwarded continuation descending
     * from one client issue carries the issue's value, so the client
     * can reject stale duplicates of an earlier visit after it has
     * already resumed the traversal. On the wire this echoes a header
     * word the packet already carries (the request's iterations field),
     * so wire_size() is unchanged.
     */
    std::uint64_t visit_echo = 0;

    /** Tracing sideband (no wire bytes; see TraceContext). */
    TraceContext trace;

    /**
     * Header checksum over the fields the switch never rewrites
     * (id, origin, cur_ptr, visit_echo). Models the UDP checksum
     * already counted inside kNetHeaderBytes: the receiving NIC
     * verifies it and discards corrupted packets instead of executing
     * them. Zero means "not sealed" (checksum not computed).
     */
    std::uint64_t checksum = 0;

    /**
     * True for pulse proper: the switch may re-route a kNotLocal
     * response to the owning memory node. False for the pulse-ACC
     * ablation (section 7.2), which bounces such responses through the
     * origin client.
     */
    bool allow_switch_continuation = true;

    /**
     * The traversal program: a non-owning interned reference.
     * Packets are copied and forwarded on every hop (switch
     * continuations, retransmit buffers, replay-window caches), and a
     * shared_ptr here would bounce the refcount on each of those —
     * measurable atomic traffic in the event hot path. Instead the
     * issuing OffloadEngine pins one shared_ptr per distinct program
     * for the cluster's lifetime (see OffloadEngine::analysis_for),
     * and everything downstream carries this raw pointer. code_size
     * preserves the honest wire cost of shipping the encoded program
     * in every packet.
     */
    const isa::Program* code = nullptr;
    Bytes code_size = 0;

    /**
     * Shipped scratch_pad contents. Only the program's scratch
     * footprint travels (the offload engine trims it), matching an
     * implementation that ships the configured scratchpad prefix.
     * Stored inline (see scratch_buffer.h) so the packet copies made
     * on every hop — retransmit buffers, replay caches, forwarded
     * continuations, event captures — never touch the heap.
     */
    ScratchBuffer scratch;

    /**
     * Fork/join extension. A response whose visit executed SPAWNs
     * carries the spawn records back to the issuing engine, which
     * forks each into a sub-traversal request of its own. Sub-
     * traversal packets carry their lineage — the parent's request id
     * and their branch index — plus their fork depth, so any engine
     * (or a post-failover replica's) can rendezvous them at the
     * parent's join record. All three contribute wire bytes only when
     * set, keeping sequential traffic byte-identical.
     */
    SpawnList spawns;
    std::uint32_t spawn_depth = 0;   ///< 0 = root traversal
    RequestId parent_id = {};        ///< seq 0 = no parent (root)
    std::uint32_t branch_index = 0;  ///< index under parent's join

    /** Modelled bytes on the wire. */
    Bytes
    wire_size() const
    {
        Bytes bytes = kNetHeaderBytes + kPulseHeaderBytes + code_size +
                      scratch.size() + spawns.wire_bytes();
        if (parent_id.seq != 0) {
            // Lineage sideband: parent id (12 B), branch index (2 B),
            // fork depth (1 B).
            bytes += 15;
        }
        return bytes;
    }
};

/**
 * Compile-time no-heap assertion for the packet hot path: every copy a
 * hop makes (and every InlineFunction capture holding a packet) must
 * be a flat memcpy. Adding an allocating member here would silently
 * reintroduce per-event heap traffic — fail the build instead.
 */
static_assert(std::is_trivially_copyable_v<TraversalPacket>);

/**
 * Attach @p program to @p packet, caching its encoded wire size. The
 * packet stores a non-owning reference: the caller must guarantee the
 * program outlives every packet (and packet copy) referencing it — in
 * the simulator the issuing OffloadEngine pins programs for the
 * cluster's lifetime.
 */
void attach_program(TraversalPacket& packet,
                    const isa::Program* program);

/** Convenience for callers holding a shared_ptr (tests, benches). */
inline void
attach_program(TraversalPacket& packet,
               const std::shared_ptr<const isa::Program>& program)
{
    attach_program(packet, program.get());
}

/**
 * Deleted: attaching an expiring owner would leave the packet's
 * non-owning reference dangling. Keep a named shared_ptr alive.
 */
void attach_program(TraversalPacket& packet,
                    std::shared_ptr<const isa::Program>&& program) =
    delete;

/**
 * Header checksum over the switch-invariant fields of @p packet
 * (id, origin, cur_ptr, visit_echo). Never returns zero, so a sealed
 * packet is distinguishable from an unsealed one.
 */
std::uint64_t header_checksum(const TraversalPacket& packet);

/** Seal @p packet: store its header checksum. */
void seal_packet(TraversalPacket& packet);

/** Verify a sealed packet's header; unsealed packets pass. */
bool verify_packet(const TraversalPacket& packet);

}  // namespace pulse::net

#endif  // PULSE_NET_PACKET_H
