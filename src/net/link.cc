#include "net/link.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::net {

Link::Link(Rate bandwidth, Time propagation)
    : bandwidth_(bandwidth), propagation_(propagation)
{
    PULSE_ASSERT(bandwidth > 0, "non-positive link bandwidth");
    PULSE_ASSERT(propagation >= 0, "negative propagation");
}

Time
Link::transmit(Time now, Bytes bytes)
{
    const Time start = std::max(now, busy_until_);
    const Time serialization = transfer_time(bytes, bandwidth_);
    busy_until_ = start + serialization;
    bytes_ += bytes;
    packets_++;
    busy_time_ += serialization;
    return busy_until_ + propagation_;
}

Rate
Link::achieved_bandwidth(Time window) const
{
    if (window <= 0) {
        return 0;
    }
    return static_cast<Rate>(bytes_) / to_seconds(window);
}

void
Link::reset_stats()
{
    bytes_ = 0;
    packets_ = 0;
    busy_time_ = 0;
}

}  // namespace pulse::net
