/**
 * @file
 * Rack network model: clients and memory nodes star-wired to one
 * programmable switch (the paper's testbed topology, section 6).
 *
 * Two delivery services are offered:
 *   - send_traversal(): pulse packets, routed *by the switch* according
 *     to the SwitchTable policy (cur_ptr match) — the in-network half of
 *     the paper's design;
 *   - send_message(): endpoint-addressed timed delivery with byte-size
 *     accounting, used by the RPC/RPC-W/AIFM and page-cache baselines
 *     (their packets route by IP, i.e. explicit destination).
 *
 * Both services share the same links and switch pipeline, so bandwidth
 * comparisons across systems (Fig. 6) are apples-to-apples. A loss
 * probability knob exercises the offload engine's timeout/retransmit
 * path, and an optional fault-injection plane (src/faults) adds
 * per-link loss/duplication/corruption/jitter and scripted node
 * stall/blackout windows; when no plane is attached the fault path is
 * a strict no-op.
 */
#ifndef PULSE_NET_NETWORK_H
#define PULSE_NET_NETWORK_H

#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/serial.h"
#include "common/units.h"
#include "faults/fault_plane.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/switch.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace pulse::net {

/** Timing/topology parameters (defaults match DESIGN.md calibration). */
struct NetworkConfig
{
    std::uint32_t num_clients = 1;
    std::uint32_t num_mem_nodes = 1;

    /** Wire bandwidth per port (100 Gbps NICs/switch, section 6). */
    Rate link_bandwidth = gbps_bits(100.0);

    /** One-way propagation + PHY + MAC latency per link. */
    Time link_propagation = micros(2.0);

    /** Switch pipeline latency per packet (Tofino-class). */
    Time switch_latency = nanos(600.0);

    /** Per-packet NIC/driver overhead at client endpoints (DPDK). */
    Time client_nic_overhead = nanos(350.0);

    /**
     * Per-packet NIC overhead at memory-node endpoints *below* the
     * accelerator's own network stack (which models its 430 ns
     * separately); kept at zero by default to avoid double counting.
     */
    Time mem_node_nic_overhead = 0;

    /** Probability a packet is dropped after switch routing. */
    double loss_probability = 0.0;

    /** Seed for the loss process. */
    std::uint64_t seed = 42;
};

/**
 * Lifetime accounting of every traversal packet the fabric handled,
 * for the packet-conservation invariant: once the event queue drains,
 * each injected or duplicated copy must be delivered or charged to
 * exactly one accounted loss bucket. Deliberately *not* cleared by
 * reset_stats(): a measurement-window stat reset must not unbalance
 * conservation for copies injected before it.
 */
struct TraversalFlow
{
    std::uint64_t injected = 0;    ///< send_traversal() calls
    std::uint64_t duplicated = 0;  ///< extra copies the faults created
    std::uint64_t delivered = 0;   ///< copies that reached a sink
    std::uint64_t source_dark = 0;      ///< sender node blacked out
    std::uint64_t plan_dropped = 0;     ///< loss knob / fault plane
    std::uint64_t delivery_blackout = 0;  ///< receiver dark at arrival
    std::uint64_t checksum_dropped = 0;   ///< NIC discarded (corrupt)

    /** True when every copy is accounted for. */
    bool
    balanced() const
    {
        return injected + duplicated ==
               delivered + source_dark + plan_dropped +
                   delivery_blackout + checksum_dropped;
    }
};

/** Delivery callback for traversal packets. */
using TraversalSink = std::function<void(TraversalPacket&&)>;

/** Delivery callback for generic messages. */
using MessageSink = std::function<void()>;

/** The rack fabric. */
class Network
{
  public:
    Network(sim::EventQueue& queue, const NetworkConfig& config);

    /** Register the handler invoked when @p addr receives a packet. */
    void attach_traversal_sink(EndpointAddr addr, TraversalSink sink);

    /** The switch's match-action table (install one rule per node). */
    SwitchTable& switch_table() { return table_; }
    const SwitchTable& switch_table() const { return table_; }

    /**
     * Send a pulse traversal packet from @p from; the switch decides
     * the destination. Invalid-pointer requests come back to the origin
     * client as kMemFault responses.
     */
    void send_traversal(EndpointAddr from, TraversalPacket packet);

    /**
     * Timed point-to-point message of @p size bytes; @p deliver runs at
     * the arrival time. Used by the baseline systems.
     */
    void send_message(EndpointAddr from, EndpointAddr to, Bytes size,
                      MessageSink deliver);

    /** Bytes transmitted by @p addr so far. */
    Bytes bytes_sent_by(EndpointAddr addr) const;

    /** Bytes received by @p addr so far. */
    Bytes bytes_received_by(EndpointAddr addr) const;

    /** Packets dropped by the loss process. */
    std::uint64_t packets_dropped() const { return dropped_; }

    /** Packets the switch routed. */
    std::uint64_t packets_routed() const { return routed_; }

    /** Packets a receiving NIC discarded for a bad header checksum. */
    std::uint64_t checksum_drops() const { return checksum_drops_; }

    /** Lifetime traversal-packet accounting (conservation check). */
    const TraversalFlow& traversal_flow() const { return flow_; }

    /**
     * Attach the fault-injection plane (nullptr detaches). The network
     * does not own the plane; the cluster does. With no plane attached
     * — or a plane whose config is all-quiet — delivery timing and the
     * loss RNG stream are bit-identical to the plain network.
     */
    void attach_fault_plane(faults::FaultPlane* plane)
    {
        fault_plane_ = plane;
    }

    /**
     * Attach the cluster's span tracer (nullptr detaches). Sampled
     * traversal packets then get per-hop spans (uplink, switch,
     * downlink). Recording is synchronous and draws no randomness, so
     * delivery timing is identical with or without a tracer.
     */
    void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

    /** Reset byte/packet statistics. */
    void reset_stats();

    /**
     * Checkpoint support (core/checkpoint.h): link horizons, byte and
     * flow accounting, the loss RNG stream, and the switch table.
     * Requires a quiesced network (no packets on the wire), which the
     * caller guarantees by checkpointing only on an empty event queue.
     */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

    const NetworkConfig& config() const { return config_; }

  private:
    struct Port
    {
        std::unique_ptr<Link> to_switch;
        std::unique_ptr<Link> from_switch;
        TraversalSink traversal_sink;
        Bytes tx_bytes = 0;
        Bytes rx_bytes = 0;
    };

    /**
     * Combined verdict for one end-to-end delivery: the legacy uniform
     * loss knob plus the fault plane's judgement on both directed links
     * (uplink of the sender, downlink of the receiver).
     */
    struct DeliveryPlan
    {
        bool drop = false;
        bool duplicate = false;
        bool corrupt = false;
        std::uint64_t corrupt_mask = 0;
        Time extra_delay = 0;
    };

    Port& port(EndpointAddr addr);
    const Port& port(EndpointAddr addr) const;
    Time nic_overhead(EndpointAddr addr) const;

    /**
     * Single loss/fault decision point for both delivery services
     * (send_traversal and send_message previously duplicated the loss
     * branch). Counts drops; draws randomness only when a knob is on.
     */
    DeliveryPlan plan_delivery(EndpointAddr from, EndpointAddr to);

    /** True when @p addr is a memory node inside a blackout window. */
    bool source_dark(EndpointAddr addr);

    /**
     * Schedule one traversal-packet copy: downlink serialization, node
     * stall/blackout handling, NIC checksum verification, then sink.
     */
    void deliver_traversal(EndpointAddr to, Time at_switch, Bytes size,
                           TraversalPacket packet);

    /** First hop: endpoint to switch; returns switch-arrival time. */
    Time uplink(EndpointAddr from, Bytes size);

    /** Second hop starting at @p at_switch; returns delivery time. */
    Time downlink(EndpointAddr to, Time at_switch, Bytes size);

    sim::EventQueue& queue_;
    NetworkConfig config_;
    SwitchTable table_;
    Rng loss_rng_;
    faults::FaultPlane* fault_plane_ = nullptr;
    trace::Tracer* tracer_ = nullptr;
    std::vector<Port> client_ports_;
    std::vector<Port> node_ports_;
    std::uint64_t dropped_ = 0;
    std::uint64_t routed_ = 0;
    std::uint64_t checksum_drops_ = 0;
    TraversalFlow flow_;
};

}  // namespace pulse::net

#endif  // PULSE_NET_NETWORK_H
