/**
 * @file
 * Point-to-point link model.
 *
 * Each directed link (endpoint -> switch or switch -> endpoint) is a
 * serialization resource: a packet occupies the wire for size/bandwidth
 * seconds (queueing behind earlier packets), then takes the propagation
 * delay to arrive. This is the standard store-and-forward abstraction;
 * it is what bounds the cache-based baseline, whose every miss moves a
 * whole page across this link.
 */
#ifndef PULSE_NET_LINK_H
#define PULSE_NET_LINK_H

#include <cstdint>

#include "common/units.h"

namespace pulse::net {

/** One direction of a full-duplex link. */
class Link
{
  public:
    /**
     * @param bandwidth   wire bandwidth in bytes/s
     * @param propagation one-way propagation + PHY latency
     */
    Link(Rate bandwidth, Time propagation);

    /**
     * Transmit @p bytes starting no earlier than @p now; returns the
     * arrival time at the far end.
     */
    Time transmit(Time now, Bytes bytes);

    /** Earliest time a new packet could start serializing. */
    Time busy_until() const { return busy_until_; }

    /** Total bytes sent. */
    Bytes bytes_sent() const { return bytes_; }

    /** Total packets sent. */
    std::uint64_t packets_sent() const { return packets_; }

    /** Time spent serializing. */
    Time busy_time() const { return busy_time_; }

    /** Achieved bandwidth over @p window (bytes/s). */
    Rate achieved_bandwidth(Time window) const;

    /** Reset statistics (not the busy horizon). */
    void reset_stats();

    /** Checkpoint support: reinstate horizon + counters. */
    void
    restore(Time busy_until, Bytes bytes, std::uint64_t packets,
            Time busy_time)
    {
        busy_until_ = busy_until;
        bytes_ = bytes;
        packets_ = packets;
        busy_time_ = busy_time;
    }

  private:
    Rate bandwidth_;
    Time propagation_;
    Time busy_until_ = 0;
    Bytes bytes_ = 0;
    std::uint64_t packets_ = 0;
    Time busy_time_ = 0;
};

}  // namespace pulse::net

#endif  // PULSE_NET_LINK_H
