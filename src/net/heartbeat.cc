#include "net/heartbeat.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::net {

namespace {
/** EWMA weight for new inter-ack samples (Jacobson-style 1/8 would be
 *  sluggish at heartbeat cadence; 0.25 tracks load shifts in a few
 *  rounds while still smoothing one-off queueing excursions). */
constexpr double kAlpha = 0.25;
}  // namespace

HeartbeatDetector::HeartbeatDetector(std::size_t num_nodes,
                                     Time interval, double threshold,
                                     std::uint32_t min_missed)
    : interval_(interval), threshold_(threshold),
      min_missed_(min_missed), nodes_(num_nodes)
{
    PULSE_ASSERT(interval_ > 0, "zero heartbeat interval");
    PULSE_ASSERT(threshold_ > 0.0, "zero suspicion threshold");
}

void
HeartbeatDetector::on_probe_sent(NodeId node, Time now)
{
    NodeState& state = nodes_[node];
    if (state.dead) {
        return;
    }
    if (!state.seen_ack && state.last_ack == 0) {
        // First contact: anchor the silence clock at the first probe
        // so a node that never answers accrues suspicion from here.
        state.last_ack = now;
    }
    if (state.probe_outstanding) {
        state.missed++;
    }
    state.probe_outstanding = true;
}

void
HeartbeatDetector::on_ack(NodeId node, Time now)
{
    NodeState& state = nodes_[node];
    if (state.dead) {
        return;  // late ack from a declared-dead node: ignored
    }
    if (state.seen_ack) {
        const double gap = static_cast<double>(now - state.last_ack);
        state.smoothed_interval =
            (1.0 - kAlpha) * state.smoothed_interval + kAlpha * gap;
    } else {
        state.seen_ack = true;
        state.smoothed_interval = static_cast<double>(interval_);
    }
    state.last_ack = now;
    state.missed = 0;
    state.probe_outstanding = false;
}

double
HeartbeatDetector::suspicion(NodeId node, Time now) const
{
    const NodeState& state = nodes_[node];
    if (state.dead || state.last_ack == 0) {
        return 0.0;
    }
    const double floor = static_cast<double>(interval_);
    const double scale = std::max(state.smoothed_interval, floor);
    return static_cast<double>(now - state.last_ack) / scale;
}

bool
HeartbeatDetector::should_declare(NodeId node, Time now) const
{
    const NodeState& state = nodes_[node];
    return !state.dead && state.missed >= min_missed_ &&
           suspicion(node, now) >= threshold_;
}

void
HeartbeatDetector::declare_dead(NodeId node)
{
    nodes_[node].dead = true;
    nodes_[node].probe_outstanding = false;
    nodes_[node].missed = 0;
}

void
HeartbeatDetector::mark_recovered(NodeId node, Time now)
{
    NodeState& state = nodes_[node];
    state = NodeState{};
    state.last_ack = now;
    state.seen_ack = false;
}

bool
HeartbeatDetector::unresolved() const
{
    for (NodeId node = 0; node < nodes_.size(); node++) {
        const NodeState& state = nodes_[node];
        if (state.dead) {
            continue;
        }
        if (state.probe_outstanding || state.missed > 0) {
            return true;
        }
    }
    return false;
}

}  // namespace pulse::net
