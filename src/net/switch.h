/**
 * @file
 * Programmable-switch model (paper sections 5 and 6).
 *
 * The Tofino program pulse installs is tiny by design: one match rule
 * per memory node, matching the cur_ptr field embedded in the UDP
 * payload of traversal packets against the node's virtual-address range
 * and emitting the corresponding output port. This models exactly that
 * match-action table plus the routing policy of section 5:
 *
 *   - request packets route by cur_ptr to the owning memory node;
 *   - response packets whose traversal must continue elsewhere
 *     (status == kNotLocal) are *re-routed* by cur_ptr — the half-RTT
 *     saving over bouncing through the CPU node;
 *   - all other responses (done / fault / iteration cap) route to the
 *     origin client, as does any packet whose cur_ptr matches no rule
 *     (invalid pointer).
 *
 * Per-packet processing happens at a fixed pipeline latency at line
 * rate, like the hardware.
 */
#ifndef PULSE_NET_SWITCH_H
#define PULSE_NET_SWITCH_H

#include <optional>
#include <vector>

#include "common/serial.h"
#include "common/stats.h"
#include "net/packet.h"

namespace pulse::net {

/** One cur_ptr match rule. */
struct SwitchRule
{
    VirtAddr base = 0;
    Bytes size = 0;
    NodeId node = kInvalidNode;

    bool
    matches(VirtAddr va) const
    {
        return va >= base && va - base < size;
    }
};

/** Where the switch decided to send a packet. */
struct RouteDecision
{
    EndpointAddr destination;
    bool invalid_pointer = false;  ///< no rule matched a request's cur_ptr
};

/** The match-action table + routing policy. */
class SwitchTable
{
  public:
    SwitchTable() = default;

    /** Install one rule per memory node. */
    void add_rule(const SwitchRule& rule);

    /** Remove the rule for @p node (e.g. node decommission). */
    bool remove_rule(NodeId node);

    /** Number of installed rules (paper: one per memory node). */
    std::size_t num_rules() const { return rules_.size(); }

    /**
     * Install a migration overlay rule: a sub-range carved out of some
     * node's home region that now routes to a different node. Overlay
     * rules are more specific than the per-node home rules and win the
     * match. Rules must not overlap each other; VA-adjacent rules to
     * the same node are coalesced. The placement plane re-installs the
     * overlay at each cutover so the switch always mirrors the
     * AddressMap's remap set.
     */
    void add_overlay_rule(const SwitchRule& rule);

    /** Drop every overlay rule (home rules are untouched). */
    void clear_overlay();

    /** Number of installed overlay rules. */
    std::size_t num_overlay_rules() const { return overlay_.size(); }

    /** Owning node for @p va, if any rule matches (overlay wins). */
    std::optional<NodeId> lookup(VirtAddr va) const;

    /** Apply the section-5 routing policy to @p packet. */
    RouteDecision route(const TraversalPacket& packet) const;

    /** Checkpoint support (core/checkpoint.h). */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

  private:
    std::vector<SwitchRule> rules_;
    std::vector<SwitchRule> overlay_;  // sorted by base, non-overlapping
};

}  // namespace pulse::net

#endif  // PULSE_NET_SWITCH_H
