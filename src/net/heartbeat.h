/**
 * @file
 * Switch-side heartbeat failure detector (docs/REPLICATION.md).
 *
 * A phi-accrual-style suspicion state machine over per-node heartbeat
 * acks: the replication plane probes every live memory node through the
 * ordinary message path each round and feeds ack arrivals here. The
 * detector keeps a smoothed inter-ack interval per node and reports
 * suspicion as the ratio of silence to that smoothed interval — a node
 * is declared dead only when suspicion crosses the threshold AND a
 * minimum number of consecutive probes went unanswered.
 *
 * The two-signal rule is what distinguishes a stall from a blackout:
 * a stalled node's NIC holds probe deliveries and flushes them at the
 * window end, so acks arrive late but arrive — suspicion spikes and
 * then collapses before the missed-probe floor is reached. A blacked-
 * out node drops probes and acks alike, so both signals keep growing
 * until death is declared. Purely deterministic: all times come from
 * the simulated clock, and the detector itself draws no randomness.
 */
#ifndef PULSE_NET_HEARTBEAT_H
#define PULSE_NET_HEARTBEAT_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::net {

/** Per-node suspicion tracker (one per cluster, indexed by node). */
class HeartbeatDetector
{
  public:
    /**
     * @param num_nodes   memory nodes to track
     * @param interval    nominal probe period (floor for the smoothed
     *                    inter-ack interval, so one slow ack cannot
     *                    make the detector hair-triggered)
     * @param threshold   suspicion level that, with the missed-probe
     *                    floor, declares a node dead
     * @param min_missed  consecutive unanswered probes required
     */
    HeartbeatDetector(std::size_t num_nodes, Time interval,
                      double threshold, std::uint32_t min_missed);

    /** A probe round targeted @p node at @p now (no ack seen yet). */
    void on_probe_sent(NodeId node, Time now);

    /** An ack from @p node arrived at @p now. */
    void on_ack(NodeId node, Time now);

    /** Silence ratio: (now - last ack) / smoothed inter-ack interval.
     *  0 for a node already declared dead. */
    double suspicion(NodeId node, Time now) const;

    /** Both death conditions hold for the (live) node. */
    bool should_declare(NodeId node, Time now) const;

    /** Administratively mark @p node dead: probing stops, suspicion
     *  reads 0, and is_dead() holds until mark_recovered(). */
    void declare_dead(NodeId node);

    bool is_dead(NodeId node) const { return nodes_[node].dead; }

    /** The node came back (nemesis recovery): reset its history so
     *  probing resumes with a clean slate anchored at @p now. */
    void mark_recovered(NodeId node, Time now);

    /** A probe of some live node is still unanswered — the probe loop
     *  must keep running until it resolves into an ack or a death. */
    bool unresolved() const;

    std::size_t num_nodes() const { return nodes_.size(); }

  private:
    struct NodeState
    {
        Time last_ack = 0;
        double smoothed_interval = 0.0;  ///< EWMA of inter-ack gaps
        std::uint32_t missed = 0;        ///< consecutive unacked probes
        bool probe_outstanding = false;
        bool dead = false;
        bool seen_ack = false;
    };

    Time interval_;
    double threshold_;
    std::uint32_t min_missed_;
    std::vector<NodeState> nodes_;
};

}  // namespace pulse::net

#endif  // PULSE_NET_HEARTBEAT_H
