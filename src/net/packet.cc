#include "net/packet.h"

namespace pulse::net {

void
attach_program(TraversalPacket& packet, const isa::Program* program)
{
    packet.code_size =
        program != nullptr ? isa::wire_code_size(*program) : 0;
    packet.code = program;
}

namespace {

/** SplitMix64 finalizer: cheap, well-mixing word hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

std::uint64_t
header_checksum(const TraversalPacket& packet)
{
    std::uint64_t h = mix64(
        (static_cast<std::uint64_t>(packet.id.client) << 32) ^
        packet.origin);
    h = mix64(h ^ packet.id.seq);
    h = mix64(h ^ packet.cur_ptr);
    h = mix64(h ^ packet.visit_echo);
    return h != 0 ? h : 1;  // reserve 0 for "not sealed"
}

void
seal_packet(TraversalPacket& packet)
{
    packet.checksum = header_checksum(packet);
}

bool
verify_packet(const TraversalPacket& packet)
{
    return packet.checksum == 0 ||
           packet.checksum == header_checksum(packet);
}

}  // namespace pulse::net
