#include "net/packet.h"

namespace pulse::net {

void
attach_program(TraversalPacket& packet,
               std::shared_ptr<const isa::Program> program)
{
    packet.code_size = program ? isa::wire_code_size(*program) : 0;
    packet.code = std::move(program);
}

}  // namespace pulse::net
