/**
 * @file
 * Live slab migration between memory nodes (docs/PLACEMENT.md).
 *
 * One migration at a time runs the protocol
 *
 *   PLAN -> COPY -> DUAL -> CUTOVER -> RETIRE
 *
 * PLAN reserves destination backing from the allocator's free list /
 * bump frontier and pre-checks both TCAMs (source punchable, room at
 * the destination). COPY streams the slab in chunks over the simulated
 * network with a selective-repeat window — each chunk pays DRAM channel
 * occupancy at both ends and link time in between, and is acked by the
 * destination; the fault plane may drop, duplicate, corrupt-deliver or
 * reorder any of it, so unacked chunks retransmit on a timeout and the
 * migration aborts (freeing the reserved backing) after too many
 * retries. CUTOVER is a single atomic event: the authoritative bytes
 * are copied functionally (the timed copy only modelled the cost),
 * the AddressMap remap overlay + switch overlay rule + destination
 * TCAM entry are installed, the source TCAM entry is punched, and the
 * vacated source backing returns to the allocator. DUAL is the window
 * where traversals that loaded before cutover store after it: the
 * source TCAM now misses, and the accelerator forwards the write to
 * the new owner through the placement plane instead of faulting.
 * RETIRE is implicit: overlays persist until a later migration
 * supersedes them.
 */
#ifndef PULSE_PLACEMENT_MIGRATION_H
#define PULSE_PLACEMENT_MIGRATION_H

#include <functional>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "mem/memory_channel.h"
#include "mem/range_tcam.h"
#include "net/network.h"
#include "placement/placement_config.h"
#include "sim/event_queue.h"

namespace pulse::placement {

/** Migration-engine statistics (exported under "placement."). */
struct MigrationStats
{
    Counter started;
    Counter completed;
    Counter aborted;
    Counter bytes_copied;          ///< timed copy-phase traffic
    Counter chunks_sent;
    Counter chunks_retransmitted;  ///< losses/timeouts on copy traffic
    Counter remaps_installed;      ///< cutovers that left an overlay
};

/** Executes one live slab migration at a time. */
class MigrationEngine
{
  public:
    MigrationEngine(sim::EventQueue& queue, net::Network& network,
                    mem::GlobalMemory& memory,
                    mem::ClusterAllocator& allocator,
                    std::vector<mem::RangeTcam*> tcams,
                    std::vector<mem::ChannelSet*> channels,
                    const PlacementConfig& config);

    /** A migration is currently in its copy phase. */
    bool active() const { return active_.has_value(); }

    /**
     * Begin migrating [@p va_base, @p va_base + @p length) to
     * @p dst. Returns false (synchronously, nothing changed) when the
     * span is not contiguously placed on a single other node, is not
     * fully backed, either TCAM would refuse the cutover, or the
     * destination is out of memory. @p on_done fires exactly once with
     * success after cutover or failure after an abort.
     */
    bool start(VirtAddr va_base, Bytes length, NodeId dst,
               std::function<void(bool)> on_done);

    const MigrationStats& stats() const { return stats_; }
    void reset_stats() { stats_ = MigrationStats{}; }

    /**
     * Invoked inside the cutover event, after routing flips, with the
     * (src, dst) nodes and the migrated span. The placement plane uses
     * it to hand the source accelerator's replay-window digest to the
     * destination — the exactly-once domain moves with the data — and
     * forwards the span to the replication plane (when present) so
     * replica bookkeeping can follow ownership changes.
     */
    void set_cutover_listener(
        std::function<void(NodeId, NodeId, VirtAddr, Bytes)> fn)
    {
        on_cutover_ = std::move(fn);
    }

  private:
    struct Active
    {
        VirtAddr va_base = 0;
        Bytes length = 0;
        NodeId src = kInvalidNode;
        NodeId dst = kInvalidNode;
        Bytes src_phys = 0;
        Bytes dst_phys = 0;
        std::vector<bool> acked;     // per chunk
        std::size_t next_unsent = 0; // chunk index
        std::size_t acked_count = 0;
        std::uint32_t retries = 0;
        std::function<void(bool)> on_done;
    };

    Bytes chunk_offset(std::size_t chunk) const;
    Bytes chunk_length(std::size_t chunk) const;
    void send_chunk(std::size_t chunk, bool retransmit);
    void on_chunk_delivered(std::uint64_t generation, std::size_t chunk);
    void on_ack(std::uint64_t generation, std::size_t chunk);
    void arm_rto(std::size_t chunk);
    void cutover();
    void abort();

    sim::EventQueue& queue_;
    net::Network& network_;
    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& allocator_;
    std::vector<mem::RangeTcam*> tcams_;
    std::vector<mem::ChannelSet*> channels_;
    PlacementConfig config_;
    std::function<void(NodeId, NodeId, VirtAddr, Bytes)> on_cutover_;
    std::optional<Active> active_;
    /** Bumped whenever a migration ends; stale timers/acks from a
     *  finished migration check it and become no-ops. */
    std::uint64_t generation_ = 0;
    MigrationStats stats_;
};

}  // namespace pulse::placement

#endif  // PULSE_PLACEMENT_MIGRATION_H
