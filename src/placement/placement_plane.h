/**
 * @file
 * Elastic placement plane façade (docs/PLACEMENT.md).
 *
 * Owns the hotness tracker and migration engine and runs the control
 * loop: accelerators report translated loads (SAMPLE); a self-arming
 * epoch timer folds the hotness EWMAs and, in elastic mode, plans
 * migrations whenever the per-node load imbalance crosses the trigger
 * (PLAN); planned migrations run one at a time through the engine
 * (COPY/DUAL/CUTOVER/RETIRE). The epoch timer quiesces when an epoch
 * saw no traffic and nothing is queued, so the plane never keeps the
 * event queue alive after a workload drains; the next recorded access
 * re-arms it.
 *
 * The plane is also the dual-residency store path: an accelerator
 * whose TCAM misses on a store/CAS (its entry was punched by a cutover
 * racing the traversal) hands the write here, and it is applied at the
 * current owner through the placement-aware GlobalMemory — in-flight
 * traversals never fault and never write stale bytes because of a
 * migration.
 */
#ifndef PULSE_PLACEMENT_PLACEMENT_PLANE_H
#define PULSE_PLACEMENT_PLACEMENT_PLANE_H

#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "accel/replay_window.h"
#include "common/stats.h"
#include "placement/hotness.h"
#include "placement/migration.h"
#include "placement/placement_config.h"

namespace pulse::placement {

/** Control-loop statistics (exported under "placement."). */
struct PlacementStats
{
    Counter accesses_sampled;  ///< loads reported by accelerators
    Counter epochs;            ///< hotness epochs rolled
    Counter plans;             ///< planning rounds that queued work
    Counter migrations_queued;
    Counter store_forwards;    ///< dual-residency writes applied
    Counter cas_forwards;      ///< dual-residency CAS applied
    Counter replay_entries_handed_off;  ///< dedup state moved at cutover
    Counter completions_mirrored;  ///< handed-off visits updated later
};

/** The assembled placement plane. */
class PlacementPlane
{
  public:
    PlacementPlane(sim::EventQueue& queue, net::Network& network,
                   mem::GlobalMemory& memory,
                   mem::ClusterAllocator& allocator,
                   std::vector<mem::RangeTcam*> tcams,
                   std::vector<mem::ChannelSet*> channels,
                   const PlacementConfig& config);

    const PlacementConfig& config() const { return config_; }

    /**
     * Wire up the per-node accelerator dedup windows (indexed by
     * node). At every migration cutover the destination window absorbs
     * the source's entries, so the exactly-once guarantee survives the
     * responder change: a retransmitted request that chases the
     * migrated slab to its new owner replays the cached response
     * instead of re-executing a store/CAS.
     */
    void attach_replay_windows(
        std::vector<accel::ReplayWindow*> windows);

    /**
     * Observe every migration cutover: fires inside the cutover event,
     * after routing flips and the digest handoff, with (src, dst,
     * va_base, length). The cluster wires the replication plane in
     * here so its mirror bookkeeping can note ownership changes.
     */
    void set_cutover_observer(
        std::function<void(NodeId, NodeId, VirtAddr, Bytes)> fn)
    {
        cutover_observer_ = std::move(fn);
    }

    /**
     * A visit absorbed at a cutover while still executing on @p from
     * just completed there; record @p response in every other window
     * holding the absorbed in-progress copy.
     */
    void mirror_completion(NodeId from,
                           const accel::ReplayWindow::Key& key,
                           const net::TraversalPacket& response);

    /**
     * Counterpart for a handed-off visit that was dropped from
     * @p from's admission queue without executing: clear the absorbed
     * copies so the retransmit is allowed to run.
     */
    void mirror_unmark(NodeId from,
                       const accel::ReplayWindow::Key& key);

    /** SAMPLE: an accelerator translated a @p bytes load at @p va. */
    void record_access(VirtAddr va, Bytes bytes);

    /**
     * DUAL: apply a store whose source-TCAM translation missed because
     * the slab migrated mid-traversal. Returns false when @p va does
     * not actually live on another node (a genuine fault).
     */
    bool try_forward_store(NodeId at, VirtAddr va, const void* data,
                           Bytes len, Time now);

    /**
     * DUAL: compare-and-swap variant. nullopt when @p va is not owned
     * elsewhere (genuine fault); otherwise the swap outcome.
     */
    std::optional<bool> try_forward_cas(NodeId at, VirtAddr va,
                                        std::uint64_t expected,
                                        std::uint64_t desired, Time now);

    /** Current smoothed node-load imbalance (max/mean; 1.0 idle). */
    double imbalance() const { return hotness_.imbalance(); }

    /** Smoothed per-node loads (EWMA bytes/epoch). */
    std::vector<double> node_loads() const
    {
        return hotness_.node_loads();
    }

    const PlacementStats& stats() const { return stats_; }
    const MigrationStats& migration_stats() const
    {
        return engine_.stats();
    }

    /** A migration is copying or migrations are queued. */
    bool busy() const
    {
        return engine_.active() || !pending_.empty();
    }

    void reset_stats();
    void register_stats(const std::string& prefix,
                        StatRegistry& registry);

  private:
    void arm_epoch();
    void on_epoch();
    void plan();
    void pump();

    sim::EventQueue& queue_;
    mem::GlobalMemory& memory_;
    std::vector<mem::ChannelSet*> channels_;
    PlacementConfig config_;
    HotnessTracker hotness_;
    MigrationEngine engine_;
    std::vector<accel::ReplayWindow*> replay_windows_;
    std::function<void(NodeId, NodeId, VirtAddr, Bytes)>
        cutover_observer_;
    std::deque<std::pair<VirtAddr, NodeId>> pending_;
    bool epoch_armed_ = false;
    PlacementStats stats_;
};

}  // namespace pulse::placement

#endif  // PULSE_PLACEMENT_PLACEMENT_PLANE_H
