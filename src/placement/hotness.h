/**
 * @file
 * Slab-granular hotness tracking for the placement plane.
 *
 * Accelerators report every translated load (address + bytes); the
 * tracker accumulates bytes per slab for the current epoch and folds
 * them into a per-slab decayed EWMA when the epoch rolls. Per-node
 * loads are derived on demand by attributing each slab's EWMA to its
 * *current* owner (AddressMap remaps included), so a migrated slab's
 * traffic immediately counts against its new home and the planner sees
 * the effect of its own moves.
 *
 * All state lives in ordered maps and every query iterates them in
 * slab order with deterministic tie-breaks, so planning is a pure
 * function of the access stream — no randomness, reproducible runs.
 */
#ifndef PULSE_PLACEMENT_HOTNESS_H
#define PULSE_PLACEMENT_HOTNESS_H

#include <map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "mem/address_map.h"
#include "placement/placement_config.h"

namespace pulse::placement {

/** One slab's identity + smoothed load, for planner queries. */
struct SlabLoad
{
    VirtAddr va_base = 0;
    double weight = 0.0;  ///< EWMA bytes/epoch
};

/** Decayed-EWMA hotness histogram over fixed-size slabs. */
class HotnessTracker
{
  public:
    HotnessTracker(const mem::AddressMap& map,
                   const PlacementConfig& config);

    /** Account @p bytes of access traffic at @p va (current epoch). */
    void record(VirtAddr va, Bytes bytes);

    /** True if record() was called since the last roll_epoch(). */
    bool epoch_activity() const { return !epoch_bytes_.empty(); }

    /** Fold the epoch accumulators into the EWMAs and decay the rest;
     *  slabs whose EWMA decays to noise are dropped. */
    void roll_epoch();

    /** Smoothed load per node, attributed via the current placement. */
    std::vector<double> node_loads() const;

    /** max/mean of node_loads(); 1.0 when the cluster is idle. */
    double imbalance() const;

    /** Slabs currently owned by @p node, hottest first (ties broken by
     *  ascending va_base). */
    std::vector<SlabLoad> hottest_on(NodeId node) const;

    /** Forget all hotness state (measurement-window reset). */
    void clear();

  private:
    std::uint64_t slab_of(VirtAddr va) const;
    VirtAddr slab_base(std::uint64_t slab) const;

    const mem::AddressMap& map_;
    VirtAddr space_base_;
    Bytes slab_bytes_;
    double alpha_;
    std::map<std::uint64_t, std::uint64_t> epoch_bytes_;
    std::map<std::uint64_t, double> ewma_;
};

}  // namespace pulse::placement

#endif  // PULSE_PLACEMENT_HOTNESS_H
