/**
 * @file
 * Configuration for the elastic placement plane (src/placement).
 *
 * Three modes (docs/PLACEMENT.md):
 *   - kOff:     no plane is constructed; the placement path is a strict
 *               no-op and runs stay bit-identical to a build without
 *               the subsystem (the default).
 *   - kStatic:  hotness tracking + per-node imbalance metrics only.
 *               Placement never changes, so throughput matches kOff;
 *               this is the "measured but unbalanced" baseline the
 *               migration ablation compares against.
 *   - kElastic: full plane: hotness sampling per epoch, migration
 *               planning whenever the node-load imbalance crosses the
 *               trigger, live slab copies with online switch/TCAM
 *               reconfiguration at cutover.
 */
#ifndef PULSE_PLACEMENT_PLACEMENT_CONFIG_H
#define PULSE_PLACEMENT_PLACEMENT_CONFIG_H

#include <cstdlib>
#include <string>

#include "common/units.h"

namespace pulse::placement {

/** How dynamic the data placement is allowed to be. */
enum class PlacementMode {
    kOff,      ///< subsystem absent (default)
    kStatic,   ///< observe hotness/imbalance, never migrate
    kElastic,  ///< migrate hot slabs to rebalance node load
};

/** Human-readable mode name (bench tables). */
inline const char*
placement_mode_name(PlacementMode mode)
{
    switch (mode) {
      case PlacementMode::kOff: return "off";
      case PlacementMode::kStatic: return "static";
      case PlacementMode::kElastic: return "elastic";
    }
    return "?";
}

/** Elastic-placement-plane knobs. */
struct PlacementConfig
{
    PlacementMode mode = PlacementMode::kOff;

    /** Migration granularity; also the hotness-histogram bucket. Must
     *  divide the per-node region size. */
    Bytes slab_bytes = 64 * kKiB;

    /** Sampling epoch: hotness EWMAs fold and the planner runs once
     *  per epoch. The epoch timer self-quiesces when no accesses were
     *  recorded, so it never keeps the event queue alive. Long enough
     *  that a uniform workload's per-node sample (hundreds of ops)
     *  stays well under the trigger — one op lands ~50 KiB on a single
     *  node, so short epochs see pure multinomial noise. */
    Time epoch = micros(100.0);

    /** EWMA smoothing for per-slab hotness across epochs. */
    double ewma_alpha = 0.3;

    /** Plan migrations when max/mean node load exceeds this. */
    double trigger_imbalance = 1.2;

    /** Stop planning once the hottest node's projected load is within
     *  (1 + headroom) of the mean. */
    double target_headroom = 0.05;

    /** Cap on migrations queued by one planning round. */
    std::uint32_t max_migrations_per_epoch = 16;

    /** Copy-phase transfer granularity over the network. */
    Bytes copy_chunk_bytes = 16 * kKiB;

    /** Copy-phase chunks kept in flight (selective repeat window). */
    std::uint32_t copy_window = 4;

    /** Retransmit timeout for an unacked copy chunk (fault plane can
     *  drop/duplicate/reorder the copy traffic like any message).
     *  Generous: a migration source is by definition a congested node,
     *  so its channel queue alone can delay a chunk tens of
     *  microseconds — a tight RTO would retransmit every chunk. */
    Time copy_rto = micros(50.0);

    /** Total chunk retransmissions before the migration aborts and
     *  frees its reserved destination backing. */
    std::uint32_t copy_max_retries = 32;

    bool enabled() const { return mode != PlacementMode::kOff; }

    /**
     * Parse the PULSE_PLACEMENT environment variable:
     *   "" / unset / "off" -> kOff (the default)
     *   "static"           -> kStatic
     *   "elastic" / "1" / "on" -> kElastic
     * Unknown values are treated as off so existing runs stay
     * untouched by typos.
     */
    static PlacementConfig
    from_env()
    {
        PlacementConfig config;
        const char* env = std::getenv("PULSE_PLACEMENT");
        if (env == nullptr || *env == '\0') {
            return config;
        }
        const std::string value(env);
        if (value == "static") {
            config.mode = PlacementMode::kStatic;
        } else if (value == "elastic" || value == "1" || value == "on") {
            config.mode = PlacementMode::kElastic;
        }
        return config;
    }
};

}  // namespace pulse::placement

#endif  // PULSE_PLACEMENT_PLACEMENT_CONFIG_H
