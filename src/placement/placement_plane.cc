#include "placement/placement_plane.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::placement {

PlacementPlane::PlacementPlane(sim::EventQueue& queue,
                               net::Network& network,
                               mem::GlobalMemory& memory,
                               mem::ClusterAllocator& allocator,
                               std::vector<mem::RangeTcam*> tcams,
                               std::vector<mem::ChannelSet*> channels,
                               const PlacementConfig& config)
    : queue_(queue), memory_(memory), channels_(channels),
      config_(config), hotness_(memory.address_map(), config),
      engine_(queue, network, memory, allocator, std::move(tcams),
              std::move(channels), config)
{
    PULSE_ASSERT(config_.enabled(),
                 "constructing a placement plane in off mode");
    PULSE_ASSERT(config_.epoch > 0, "zero placement epoch");
}

void
PlacementPlane::attach_replay_windows(
    std::vector<accel::ReplayWindow*> windows)
{
    replay_windows_ = std::move(windows);
    engine_.set_cutover_listener([this](NodeId src, NodeId dst,
                                        VirtAddr va_base, Bytes length) {
        if (src < replay_windows_.size() &&
            dst < replay_windows_.size()) {
            const std::size_t copied =
                replay_windows_[dst]->absorb_from(
                    *replay_windows_[src]);
            stats_.replay_entries_handed_off.increment(copied);
        }
        if (cutover_observer_) {
            cutover_observer_(src, dst, va_base, length);
        }
    });
}

void
PlacementPlane::mirror_completion(NodeId from,
                                  const accel::ReplayWindow::Key& key,
                                  const net::TraversalPacket& response)
{
    for (std::size_t node = 0; node < replay_windows_.size(); node++) {
        if (node == from) {
            continue;
        }
        accel::ReplayWindow& window = *replay_windows_[node];
        if (window.classify(key) ==
            accel::ReplayWindow::Verdict::kInProgress) {
            window.import_completion(key, response);
            stats_.completions_mirrored.increment();
        }
    }
}

void
PlacementPlane::mirror_unmark(NodeId from,
                              const accel::ReplayWindow::Key& key)
{
    for (std::size_t node = 0; node < replay_windows_.size(); node++) {
        if (node == from) {
            continue;
        }
        accel::ReplayWindow& window = *replay_windows_[node];
        if (window.classify(key) ==
            accel::ReplayWindow::Verdict::kInProgress) {
            window.unmark(key);
        }
    }
}

void
PlacementPlane::record_access(VirtAddr va, Bytes bytes)
{
    stats_.accesses_sampled.increment();
    hotness_.record(va, bytes);
    if (!epoch_armed_) {
        arm_epoch();
    }
}

bool
PlacementPlane::try_forward_store(NodeId at, VirtAddr va,
                                  const void* data, Bytes len, Time now)
{
    const auto owner = memory_.address_map().node_for(va);
    if (!owner.has_value() || *owner == at) {
        return false;
    }
    channels_[*owner]->access(now, len);
    memory_.write(va, data, len);
    stats_.store_forwards.increment();
    return true;
}

std::optional<bool>
PlacementPlane::try_forward_cas(NodeId at, VirtAddr va,
                                std::uint64_t expected,
                                std::uint64_t desired, Time now)
{
    const auto owner = memory_.address_map().node_for(va);
    if (!owner.has_value() || *owner == at) {
        return std::nullopt;
    }
    channels_[*owner]->access(now, 8);
    stats_.cas_forwards.increment();
    const std::uint64_t current = memory_.read_as<std::uint64_t>(va);
    if (current != expected) {
        return false;
    }
    memory_.write_as<std::uint64_t>(va, desired);
    return true;
}

void
PlacementPlane::arm_epoch()
{
    epoch_armed_ = true;
    queue_.schedule_after(config_.epoch, [this] { on_epoch(); });
}

void
PlacementPlane::on_epoch()
{
    stats_.epochs.increment();
    const bool activity = hotness_.epoch_activity();
    hotness_.roll_epoch();
    if (config_.mode == PlacementMode::kElastic) {
        plan();
    }
    // Self-quiesce: an idle epoch with no migration work pending stops
    // the timer so the event queue can drain; the next recorded access
    // re-arms it.
    if (activity || busy()) {
        arm_epoch();
    } else {
        epoch_armed_ = false;
    }
}

void
PlacementPlane::plan()
{
    if (busy()) {
        return;  // let the current batch land before re-planning
    }
    std::vector<double> loads = hotness_.node_loads();
    const std::size_t n = loads.size();
    double sum = 0.0;
    for (const double load : loads) {
        sum += load;
    }
    const double mean = sum / static_cast<double>(n);
    if (mean <= 0.0) {
        return;
    }
    const double target = mean * (1.0 + config_.target_headroom);
    if (*std::max_element(loads.begin(), loads.end()) <
        mean * config_.trigger_imbalance) {
        return;
    }

    // Greedy rebalance on projected loads: repeatedly move the hottest
    // slab of the hottest node to the coldest node, while each move
    // strictly improves the pair. Deterministic throughout: loads come
    // from ordered maps, ties break toward the lowest node id.
    std::vector<std::vector<SlabLoad>> slabs(n);
    std::vector<std::size_t> cursor(n, 0);
    bool queued_any = false;
    for (std::uint32_t moves = 0;
         moves < config_.max_migrations_per_epoch; moves++) {
        std::size_t hot = 0;
        std::size_t cold = 0;
        for (std::size_t i = 1; i < n; i++) {
            if (loads[i] > loads[hot]) {
                hot = i;
            }
            if (loads[i] < loads[cold]) {
                cold = i;
            }
        }
        if (loads[hot] <= target || hot == cold) {
            break;
        }
        if (slabs[hot].empty() && cursor[hot] == 0) {
            slabs[hot] = hotness_.hottest_on(static_cast<NodeId>(hot));
        }
        // Next slab on the hot node whose move strictly improves the
        // hot/cold pair (skips slabs too heavy to help).
        bool moved = false;
        while (cursor[hot] < slabs[hot].size()) {
            const SlabLoad& slab = slabs[hot][cursor[hot]++];
            if (loads[cold] + slab.weight < loads[hot]) {
                pending_.emplace_back(slab.va_base,
                                      static_cast<NodeId>(cold));
                stats_.migrations_queued.increment();
                loads[hot] -= slab.weight;
                loads[cold] += slab.weight;
                queued_any = true;
                moved = true;
                break;
            }
        }
        if (!moved) {
            break;  // nothing movable on the hottest node
        }
    }
    if (queued_any) {
        stats_.plans.increment();
        pump();
    }
}

void
PlacementPlane::pump()
{
    while (!pending_.empty() && !engine_.active()) {
        const auto [va, dst] = pending_.front();
        pending_.pop_front();
        // A rejected start (slab no longer eligible: moved meanwhile,
        // unbacked tail, TCAM/capacity pressure) just tries the next.
        engine_.start(va, config_.slab_bytes, dst,
                      [this](bool) { pump(); });
    }
}

void
PlacementPlane::reset_stats()
{
    stats_ = PlacementStats{};
    engine_.reset_stats();
}

void
PlacementPlane::register_stats(const std::string& prefix,
                               StatRegistry& registry)
{
    registry.register_counter(prefix + ".accesses_sampled",
                              &stats_.accesses_sampled);
    registry.register_counter(prefix + ".epochs", &stats_.epochs);
    registry.register_counter(prefix + ".plans", &stats_.plans);
    registry.register_counter(prefix + ".migrations_queued",
                              &stats_.migrations_queued);
    registry.register_counter(prefix + ".store_forwards",
                              &stats_.store_forwards);
    registry.register_counter(prefix + ".cas_forwards",
                              &stats_.cas_forwards);
    registry.register_counter(prefix + ".replay_entries_handed_off",
                              &stats_.replay_entries_handed_off);
    registry.register_counter(prefix + ".completions_mirrored",
                              &stats_.completions_mirrored);
    const MigrationStats& m = engine_.stats();
    registry.register_counter(prefix + ".migrations_started",
                              &m.started);
    registry.register_counter(prefix + ".migrations_completed",
                              &m.completed);
    registry.register_counter(prefix + ".migrations_aborted",
                              &m.aborted);
    registry.register_counter(prefix + ".bytes_copied",
                              &m.bytes_copied);
    registry.register_counter(prefix + ".chunks_sent",
                              &m.chunks_sent);
    registry.register_counter(prefix + ".chunks_retransmitted",
                              &m.chunks_retransmitted);
    registry.register_counter(prefix + ".remaps_installed",
                              &m.remaps_installed);
}

}  // namespace pulse::placement
