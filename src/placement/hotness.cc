#include "placement/hotness.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::placement {

namespace {
/** EWMAs below this many bytes/epoch are indistinguishable from idle
 *  and are dropped to bound the histogram's size. */
constexpr double kNoiseFloor = 1.0;
}  // namespace

HotnessTracker::HotnessTracker(const mem::AddressMap& map,
                               const PlacementConfig& config)
    : map_(map), space_base_(map.region(0).base),
      slab_bytes_(config.slab_bytes), alpha_(config.ewma_alpha)
{
    PULSE_ASSERT(slab_bytes_ > 0, "zero slab size");
    PULSE_ASSERT(map.region_size() % slab_bytes_ == 0,
                 "slab size must divide the node region size");
    PULSE_ASSERT(alpha_ > 0.0 && alpha_ <= 1.0, "bad EWMA alpha");
}

std::uint64_t
HotnessTracker::slab_of(VirtAddr va) const
{
    PULSE_ASSERT(va >= space_base_, "va below the VA space");
    return (va - space_base_) / slab_bytes_;
}

VirtAddr
HotnessTracker::slab_base(std::uint64_t slab) const
{
    return space_base_ + slab * slab_bytes_;
}

void
HotnessTracker::record(VirtAddr va, Bytes bytes)
{
    epoch_bytes_[slab_of(va)] += bytes;
}

void
HotnessTracker::roll_epoch()
{
    // Decay every known slab, then blend in this epoch's traffic.
    for (auto it = ewma_.begin(); it != ewma_.end();) {
        it->second *= 1.0 - alpha_;
        if (it->second < kNoiseFloor &&
            epoch_bytes_.find(it->first) == epoch_bytes_.end()) {
            it = ewma_.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto& [slab, bytes] : epoch_bytes_) {
        ewma_[slab] += alpha_ * static_cast<double>(bytes);
    }
    epoch_bytes_.clear();
}

std::vector<double>
HotnessTracker::node_loads() const
{
    std::vector<double> loads(map_.num_nodes(), 0.0);
    for (const auto& [slab, weight] : ewma_) {
        const auto node = map_.node_for(slab_base(slab));
        if (node.has_value()) {
            loads[*node] += weight;
        }
    }
    return loads;
}

double
HotnessTracker::imbalance() const
{
    const std::vector<double> loads = node_loads();
    double max = 0.0;
    double sum = 0.0;
    for (const double load : loads) {
        max = std::max(max, load);
        sum += load;
    }
    if (sum <= 0.0) {
        return 1.0;
    }
    return max / (sum / static_cast<double>(loads.size()));
}

std::vector<SlabLoad>
HotnessTracker::hottest_on(NodeId node) const
{
    std::vector<SlabLoad> slabs;
    for (const auto& [slab, weight] : ewma_) {
        const VirtAddr base = slab_base(slab);
        const auto owner = map_.node_for(base);
        if (owner.has_value() && *owner == node) {
            slabs.push_back(SlabLoad{base, weight});
        }
    }
    std::stable_sort(slabs.begin(), slabs.end(),
                     [](const SlabLoad& a, const SlabLoad& b) {
                         return a.weight > b.weight;
                     });
    return slabs;
}

void
HotnessTracker::clear()
{
    epoch_bytes_.clear();
    ewma_.clear();
}

}  // namespace pulse::placement
