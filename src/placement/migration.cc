#include "placement/migration.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace pulse::placement {

namespace {
/** Ack packets carry a chunk id + checksum: a NIC-header-sized frame. */
constexpr Bytes kAckBytes = 64;
/** Slab backing keeps data-structure node alignment. */
constexpr Bytes kBackingAlign = 256;
}  // namespace

MigrationEngine::MigrationEngine(sim::EventQueue& queue,
                                 net::Network& network,
                                 mem::GlobalMemory& memory,
                                 mem::ClusterAllocator& allocator,
                                 std::vector<mem::RangeTcam*> tcams,
                                 std::vector<mem::ChannelSet*> channels,
                                 const PlacementConfig& config)
    : queue_(queue), network_(network), memory_(memory),
      allocator_(allocator), tcams_(std::move(tcams)),
      channels_(std::move(channels)), config_(config)
{
    PULSE_ASSERT(config_.copy_chunk_bytes > 0, "zero copy chunk");
    PULSE_ASSERT(config_.copy_window > 0, "zero copy window");
}

Bytes
MigrationEngine::chunk_offset(std::size_t chunk) const
{
    return static_cast<Bytes>(chunk) * config_.copy_chunk_bytes;
}

Bytes
MigrationEngine::chunk_length(std::size_t chunk) const
{
    const Bytes offset = chunk_offset(chunk);
    return std::min(config_.copy_chunk_bytes,
                    active_->length - offset);
}

bool
MigrationEngine::start(VirtAddr va_base, Bytes length, NodeId dst,
                       std::function<void(bool)> on_done)
{
    if (active_ || length == 0 || dst >= tcams_.size() ||
        !memory_.address_map().node_for(va_base).has_value()) {
        return false;
    }
    // PLAN: the span must be contiguously placed on one (other) node
    // and fully backed (below the owner's bump frontier).
    const mem::Placement p =
        memory_.address_map().placement_for(va_base);
    if (p.node == dst || p.contiguous < length ||
        p.phys + length > allocator_.allocated_on(p.node)) {
        return false;
    }
    // Both TCAM updates must be guaranteed before anything moves, so
    // cutover can never half-fail: the source entry must be punchable
    // and the destination must have a free slot (coalescing may make
    // the slot unnecessary, but the pre-check is conservative).
    if (!tcams_[p.node]->can_punch(va_base, length) ||
        tcams_[dst]->size() >= tcams_[dst]->capacity()) {
        return false;
    }
    const Bytes dst_phys =
        allocator_.alloc_backing(dst, length, kBackingAlign);
    if (dst_phys == mem::ClusterAllocator::kNoBacking) {
        return false;
    }

    const std::size_t chunks = static_cast<std::size_t>(
        (length + config_.copy_chunk_bytes - 1) /
        config_.copy_chunk_bytes);
    active_.emplace();
    active_->va_base = va_base;
    active_->length = length;
    active_->src = p.node;
    active_->dst = dst;
    active_->src_phys = p.phys;
    active_->dst_phys = dst_phys;
    active_->acked.assign(chunks, false);
    active_->on_done = std::move(on_done);
    stats_.started.increment();

    // COPY: open the selective-repeat window.
    const std::size_t window =
        std::min<std::size_t>(config_.copy_window, chunks);
    for (std::size_t i = 0; i < window; i++) {
        send_chunk(active_->next_unsent++, /*retransmit=*/false);
    }
    return true;
}

void
MigrationEngine::send_chunk(std::size_t chunk, bool retransmit)
{
    Active& m = *active_;
    const Bytes len = chunk_length(chunk);
    stats_.chunks_sent.increment();
    stats_.bytes_copied.increment(len);
    if (retransmit) {
        stats_.chunks_retransmitted.increment();
    }
    // The source DMA engine reads the chunk through the node's DRAM
    // channels (copy traffic contends with traversal loads), then the
    // chunk crosses the fabric as an ordinary message — the fault
    // plane may drop/duplicate/delay it like any other.
    const Time now = queue_.now();
    const Time read_done = channels_[m.src]->access(now, len);
    const std::uint64_t gen = generation_;
    const NodeId src = m.src;
    const NodeId dst = m.dst;
    queue_.schedule_at(read_done, [this, gen, chunk, src, dst, len] {
        if (generation_ != gen) {
            return;  // migration ended while the read was in flight
        }
        network_.send_message(net::EndpointAddr::mem_node(src),
                              net::EndpointAddr::mem_node(dst), len,
                              [this, gen, chunk] {
                                  on_chunk_delivered(gen, chunk);
                              });
    });
    arm_rto(chunk);
}

void
MigrationEngine::on_chunk_delivered(std::uint64_t generation,
                                    std::size_t chunk)
{
    if (generation != generation_ || !active_) {
        return;  // stale copy of a finished migration
    }
    Active& m = *active_;
    // The destination DMA engine writes the chunk into the reserved
    // backing (timed only — the authoritative bytes are copied in one
    // atomic event at cutover, so chunks overwritten by racing stores
    // after they were copied can never leak stale data). Duplicate
    // deliveries re-ack: the previous ack may have been lost.
    channels_[m.dst]->access(queue_.now(), chunk_length(chunk));
    network_.send_message(
        net::EndpointAddr::mem_node(m.dst),
        net::EndpointAddr::mem_node(m.src), kAckBytes,
        [this, generation, chunk] { on_ack(generation, chunk); });
}

void
MigrationEngine::on_ack(std::uint64_t generation, std::size_t chunk)
{
    if (generation != generation_ || !active_) {
        return;
    }
    Active& m = *active_;
    if (m.acked[chunk]) {
        return;  // duplicate ack
    }
    m.acked[chunk] = true;
    m.acked_count++;
    if (m.acked_count == m.acked.size()) {
        cutover();
        return;
    }
    if (m.next_unsent < m.acked.size()) {
        send_chunk(m.next_unsent++, /*retransmit=*/false);
    }
}

void
MigrationEngine::arm_rto(std::size_t chunk)
{
    const std::uint64_t gen = generation_;
    queue_.schedule_after(config_.copy_rto, [this, gen, chunk] {
        if (generation_ != gen || !active_ || active_->acked[chunk]) {
            return;
        }
        if (++active_->retries > config_.copy_max_retries) {
            abort();
            return;
        }
        send_chunk(chunk, /*retransmit=*/true);
    });
}

void
MigrationEngine::cutover()
{
    Active m = std::move(*active_);
    active_.reset();
    generation_++;  // quench copy-phase timers and stragglers

    // Functional copy in the same event: the placement-aware read pulls
    // the authoritative bytes from the current owner, so every store
    // that landed during the copy phase is included. This bumps the
    // destination's mutation counter, which automatically degrades the
    // golden oracle to weak checks for operations in flight across the
    // cutover.
    std::vector<std::uint8_t> bytes(m.length);
    memory_.read(m.va_base, bytes.data(), m.length);
    memory_.node(m.dst).write(m.dst_phys, bytes.data(), m.length);

    // Flip ownership: AddressMap overlay first (the authority), then
    // the switch overlay and TCAMs are derived from it, so the route-
    // agreement audit always sees the three in lockstep.
    mem::AddressMap& map = memory_.mutable_address_map();
    const NodeId home = *map.home_node_for(m.va_base);
    if (m.dst == home && m.dst_phys == map.offset_in_region(m.va_base)) {
        // Moved back into its home frame: the overlay dissolves.
        map.clear_remap(m.va_base, m.length);
    } else {
        const bool remapped = map.install_remap(mem::Remap{
            m.va_base, m.length, m.dst, m.dst_phys});
        PULSE_ASSERT(remapped, "cutover remap rejected");
        stats_.remaps_installed.increment();
    }
    net::SwitchTable& table = network_.switch_table();
    table.clear_overlay();
    for (const mem::Remap& r : map.remaps()) {
        table.add_overlay_rule(net::SwitchRule{r.va_base, r.length,
                                               r.node});
    }
    const bool punched = tcams_[m.src]->punch(m.va_base, m.length);
    PULSE_ASSERT(punched, "pre-checked source TCAM punch failed");
    const bool installed = tcams_[m.dst]->insert_coalesce(mem::RangeEntry{
        m.va_base, m.length, m.dst_phys, mem::Perm::kReadWrite});
    PULSE_ASSERT(installed, "pre-checked dest TCAM insert failed");

    // The reconfiguration message also carries the source's replay
    // digest: retransmitted requests now route to the destination, so
    // its dedup window must recognise visits the source already
    // executed — otherwise a lost response plus a retransmit chasing
    // the migrated slab would re-execute a store/CAS.
    if (on_cutover_) {
        on_cutover_(m.src, m.dst, m.va_base, m.length);
    }

    // RETIRE the vacated backing into the allocator's free list so a
    // later migration (possibly back here) reuses the address range.
    allocator_.free_backing(m.src, m.src_phys, m.length);

    stats_.completed.increment();
    if (m.on_done) {
        m.on_done(true);
    }
}

void
MigrationEngine::abort()
{
    Active m = std::move(*active_);
    active_.reset();
    generation_++;
    allocator_.free_backing(m.dst, m.dst_phys, m.length);
    stats_.aborted.increment();
    if (m.on_done) {
        m.on_done(false);
    }
}

}  // namespace pulse::placement
