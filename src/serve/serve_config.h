/**
 * @file
 * Configuration for the multi-tenant serving plane (src/serve).
 *
 * The serving plane models what sits between a production client fleet
 * and the accelerators: per-tenant QoS admission control at the memory
 * nodes (token-bucket traversal quotas, weighted-deficit-round-robin
 * scheduling, SLO classes with per-class queue-depth caps and load
 * shedding) plus the client-fleet generator (src/serve/fleet.h).
 *
 * Gating follows the PR 5/6 pattern exactly: with the plane off (the
 * default) no QosController is constructed, accelerators keep a null
 * serving pointer, no stats keys are registered, and runs stay
 * bit-identical to a build without the subsystem. Benches honor the
 * PULSE_SERVING environment variable (docs/SERVING.md).
 */
#ifndef PULSE_SERVE_SERVE_CONFIG_H
#define PULSE_SERVE_SERVE_CONFIG_H

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/units.h"

namespace pulse::serve {

/** Tenant identity as carried by TraversalPacket::tenant. */
using TenantId = std::uint32_t;

/**
 * SLO class of a tenant's traffic. Latency-sensitive tenants get the
 * small, tightly-capped queue (shed early, keep tail latency bounded);
 * batch tenants get the deep queue (absorb bursts, tolerate waiting).
 */
enum class SloClass : std::uint8_t {
    kLatencySensitive,
    kBatch,
};

/** Human-readable class name (bench tables, trace_report). */
inline const char*
slo_class_name(SloClass slo)
{
    switch (slo) {
      case SloClass::kLatencySensitive: return "latency";
      case SloClass::kBatch: return "batch";
    }
    return "?";
}

/** Per-tenant QoS contract. */
struct TenantQos
{
    TenantId id = 0;

    SloClass slo = SloClass::kLatencySensitive;

    /**
     * Weighted-deficit-round-robin weight: queued requests of a tenant
     * with weight w are served w times as often as a weight-1 tenant's
     * under contention. Clamped to >= 1.
     */
    std::uint32_t weight = 1;

    /**
     * Token-bucket traversal quota in new traversals per second; 0 (the
     * default) means unlimited. Only *fresh* root requests are charged:
     * continuations and fork children of an admitted traversal
     * represent work already in the system and always pass (admit at
     * entry, never kill mid-flight).
     */
    double quota_ops_per_s = 0.0;

    /** Token-bucket burst capacity in traversals. */
    double quota_burst = 16.0;
};

/** Serving-plane knobs (part of ClusterConfig). */
struct ServeConfig
{
    /** Master switch: off constructs nothing (see file comment). */
    bool on = false;

    /**
     * QoS contracts by tenant. A tenant id that appears in traffic but
     * not here falls back to the default contract (latency class,
     * weight 1, no quota). Duplicated ids: first entry wins.
     */
    std::vector<TenantQos> tenants;

    /**
     * Per-node queue-depth cap for latency-sensitive tenants' queued
     * requests. Beyond it the request is shed with a typed kRejected
     * response instead of queueing — bounded queueing delay is the SLO.
     */
    std::uint32_t latency_queue_cap = 256;

    /** Per-node queue-depth cap for batch tenants' queued requests. */
    std::uint32_t batch_queue_cap = 4096;

    /**
     * Throttled (over-quota) requests parked per tenant per node;
     * beyond it over-quota requests are shed instead of parked.
     */
    std::uint32_t throttle_park_cap = 1024;

    bool enabled() const { return on; }

    /** The contract for @p tenant (default contract if unknown). */
    TenantQos
    qos_of(TenantId tenant) const
    {
        for (const TenantQos& qos : tenants) {
            if (qos.id == tenant) {
                return qos;
            }
        }
        return TenantQos{tenant};
    }

    /**
     * Parse the PULSE_SERVING environment variable:
     *   "" / unset / "off" -> disabled (the default)
     *   "on" / "1"         -> enabled with default contracts
     * Unknown values are treated as off so existing runs stay
     * untouched by typos. Benches that need specific contracts (the
     * tenant-isolation ablation) configure them programmatically.
     */
    static ServeConfig
    from_env()
    {
        ServeConfig config;
        const char* env = std::getenv("PULSE_SERVING");
        if (env == nullptr || *env == '\0') {
            return config;
        }
        const std::string value(env);
        if (value == "on" || value == "1") {
            config.on = true;
        }
        return config;
    }
};

}  // namespace pulse::serve

#endif  // PULSE_SERVE_SERVE_CONFIG_H
