#include "serve/qos.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace pulse::serve {

QosController::QosController(sim::EventQueue& queue,
                             const ServeConfig& config)
    : queue_(queue), config_(config)
{
    // Pre-create state for configured tenants so counter iteration
    // order (and therefore metrics output) is fixed by the config, not
    // by traffic arrival order.
    for (const TenantQos& qos : config_.tenants) {
        state_of(qos.id);
    }
}

void
QosController::attach_node(NodeId node, ReadmitFn readmit)
{
    if (readmit_.size() <= node) {
        readmit_.resize(node + 1);
        queued_.resize(node + 1, {0, 0});
    }
    readmit_[node] = std::move(readmit);
}

QosController::TenantState&
QosController::state_of(TenantId tenant)
{
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        TenantState state;
        state.qos = config_.qos_of(tenant);
        state.qos.weight = std::max<std::uint32_t>(state.qos.weight, 1);
        state.tokens = state.qos.quota_burst;
        state.last_refill = queue_.now();
        it = tenants_.emplace(tenant, std::move(state)).first;
        counters_.emplace(tenant, TenantCounters{});
    }
    return it->second;
}

void
QosController::refill(TenantState& state, Time now) const
{
    if (state.qos.quota_ops_per_s <= 0.0) {
        return;
    }
    if (now <= state.last_refill) {
        return;
    }
    const double elapsed_s = to_seconds(now - state.last_refill);
    state.tokens = std::min(
        state.qos.quota_burst,
        state.tokens + elapsed_s * state.qos.quota_ops_per_s);
    state.last_refill = now;
}

QosController::Verdict
QosController::charge(NodeId node, net::TraversalPacket& packet)
{
    if (!is_fresh_root(packet)) {
        // Continuations, fork children, and responses represent work
        // already admitted: never charged, never rejected.
        return Verdict::kAdmit;
    }
    const TenantId tenant = packet.tenant;
    TenantState& state = state_of(tenant);
    TenantCounters& counters = counters_[tenant];
    if (state.qos.quota_ops_per_s <= 0.0) {
        counters.admitted++;
        stats_.admitted.increment();
        return Verdict::kAdmit;
    }
    refill(state, queue_.now());
    // Packets park behind earlier over-quota arrivals of the same
    // tenant even if a token is free now — releases drain in FIFO
    // order, so admitting around the park queue would reorder.
    if (state.parked.empty() && state.tokens >= 1.0) {
        state.tokens -= 1.0;
        counters.admitted++;
        stats_.admitted.increment();
        return Verdict::kAdmit;
    }
    if (state.parked.size() >= config_.throttle_park_cap) {
        return Verdict::kShed;
    }
    counters.throttled++;
    stats_.quota_throttled.increment();
    // Park timestamp: the accelerator's readmit() span covers the
    // whole wait for quota tokens.
    packet.trace.queued_at = queue_.now();
    state.parked.push_back({node, std::move(packet)});
    arm_release(tenant, state);
    return Verdict::kThrottle;
}

void
QosController::arm_release(TenantId tenant, TenantState& state)
{
    if (state.release_armed || state.parked.empty()) {
        return;
    }
    // Time until the bucket holds one whole token.
    const double deficit = std::max(0.0, 1.0 - state.tokens);
    const double wait_s = deficit / state.qos.quota_ops_per_s;
    Time delay = static_cast<Time>(std::ceil(wait_s * kSecond));
    delay = std::max<Time>(delay, 1);
    state.release_armed = true;
    queue_.schedule_after(delay,
                          [this, tenant]() { release(tenant); });
}

void
QosController::release(TenantId tenant)
{
    TenantState& state = tenants_.at(tenant);
    state.release_armed = false;
    refill(state, queue_.now());
    TenantCounters& counters = counters_[tenant];
    while (!state.parked.empty() && state.tokens >= 1.0) {
        state.tokens -= 1.0;
        TenantState::Parked parked = std::move(state.parked.front());
        state.parked.pop_front();
        counters.admitted++;
        stats_.admitted.increment();
        assert(parked.node < readmit_.size() &&
               readmit_[parked.node]);
        readmit_[parked.node](std::move(parked.packet));
    }
    arm_release(tenant, state);
}

bool
QosController::may_enqueue(NodeId node,
                           const net::TraversalPacket& packet) const
{
    if (node >= queued_.size()) {
        return true;
    }
    const SloClass slo = class_of(packet.tenant);
    const std::uint32_t depth =
        queued_[node][static_cast<std::size_t>(slo)];
    const std::uint32_t cap = slo == SloClass::kLatencySensitive
                                  ? config_.latency_queue_cap
                                  : config_.batch_queue_cap;
    return depth < cap;
}

void
QosController::note_enqueued(NodeId node, TenantId tenant)
{
    if (node >= queued_.size()) {
        queued_.resize(node + 1, {0, 0});
    }
    queued_[node][static_cast<std::size_t>(class_of(tenant))]++;
}

void
QosController::note_dequeued(NodeId node, TenantId tenant)
{
    assert(node < queued_.size());
    std::uint32_t& depth =
        queued_[node][static_cast<std::size_t>(class_of(tenant))];
    assert(depth > 0);
    depth--;
}

void
QosController::note_shed(NodeId node, TenantId tenant)
{
    (void)node;
    counters_[tenant].shed++;
    stats_.shed.increment();
}

std::uint32_t
QosController::weight_of(TenantId tenant) const
{
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end()) {
        return it->second.qos.weight;
    }
    const TenantQos qos = config_.qos_of(tenant);
    return std::max<std::uint32_t>(qos.weight, 1);
}

SloClass
QosController::class_of(TenantId tenant) const
{
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end()) {
        return it->second.qos.slo;
    }
    return config_.qos_of(tenant).slo;
}

std::size_t
QosController::parked() const
{
    std::size_t total = 0;
    for (const auto& [tenant, state] : tenants_) {
        total += state.parked.size();
    }
    return total;
}

void
QosController::register_stats(const std::string& prefix,
                              StatRegistry& registry)
{
    registry.register_counter(prefix + ".admitted", &stats_.admitted);
    registry.register_counter(prefix + ".shed", &stats_.shed);
    registry.register_counter(prefix + ".quota_throttled",
                              &stats_.quota_throttled);
}

}  // namespace pulse::serve
