/**
 * @file
 * QoS admission control at the accelerator entry (serving plane).
 *
 * One QosController per cluster enforces the ServeConfig contracts at
 * every memory node's admission point:
 *
 *   - token-bucket traversal quotas: each *fresh root* request (not a
 *     continuation, not a fork child — work already admitted is never
 *     killed mid-flight) charges its tenant's bucket. An over-quota
 *     request is parked and re-injected when the bucket refills
 *     (throttling); past the park cap it is shed instead;
 *   - per-class queue-depth caps: a request that would have to wait in
 *     the admission queue is shed with a typed kRejected response when
 *     its SLO class's queue at that node is full — latency-sensitive
 *     tenants get a short queue (bounded queueing delay), batch
 *     tenants a deep one;
 *   - WDRR weights for the admission queue (accel::SchedPolicy::
 *     kWeightedDrr keys service by packet.tenant and asks this
 *     controller for the weights).
 *
 * All decisions are deterministic functions of (config, packet,
 * simulated time): no randomness, no wall clock, so serving-on runs
 * are exactly reproducible and checkpoint-compatible.
 */
#ifndef PULSE_SERVE_QOS_H
#define PULSE_SERVE_QOS_H

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "net/packet.h"
#include "serve/serve_config.h"
#include "sim/event_queue.h"

namespace pulse::serve {

/** Aggregate admission counters (registered as serve.* when on). */
struct QosStats
{
    Counter admitted;         ///< fresh roots past quota + caps
    Counter shed;             ///< typed kRejected rejections
    Counter quota_throttled;  ///< fresh roots parked for bucket refill
};

/** Cluster-wide QoS admission controller. */
class QosController
{
  public:
    /** The accelerator's re-entry point for released packets. */
    using ReadmitFn = std::function<void(net::TraversalPacket&&)>;

    QosController(sim::EventQueue& queue, const ServeConfig& config);

    /** What the admission point must do with a charged packet. */
    enum class Verdict : std::uint8_t {
        kAdmit,     ///< proceed to dispatch/queueing
        kThrottle,  ///< controller parked the packet (moved-from)
        kShed,      ///< reject with a typed kRejected response
    };

    /**
     * Register node @p node's re-entry point (called once per
     * accelerator at wiring time). Released packets skip the already-
     * paid net-stack/scheduler delays and re-enter at placement.
     */
    void attach_node(NodeId node, ReadmitFn readmit);

    /**
     * Charge @p packet against its tenant's traversal quota at node
     * @p node. Only fresh roots are charged; everything else admits
     * unconditionally. On kThrottle the packet has been moved into the
     * tenant's park queue and will re-enter via the node's ReadmitFn
     * when the bucket refills — the caller must stop processing it.
     */
    Verdict charge(NodeId node, net::TraversalPacket& packet);

    /**
     * Queue-depth cap check for @p packet joining node @p node's
     * admission queue. False means the caller must shed.
     */
    bool may_enqueue(NodeId node,
                     const net::TraversalPacket& packet) const;

    /** Track admission-queue depth per (node, SLO class). */
    void note_enqueued(NodeId node, TenantId tenant);
    void note_dequeued(NodeId node, TenantId tenant);

    /** Count one shed (the accelerator calls this on every shed). */
    void note_shed(NodeId node, TenantId tenant);

    /** WDRR weight of @p tenant (>= 1). */
    std::uint32_t weight_of(TenantId tenant) const;

    /** SLO class of @p tenant. */
    SloClass class_of(TenantId tenant) const;

    const ServeConfig& config() const { return config_; }
    const QosStats& stats() const { return stats_; }

    /** Per-tenant admission counters (deterministic iteration). */
    struct TenantCounters
    {
        std::uint64_t admitted = 0;
        std::uint64_t shed = 0;
        std::uint64_t throttled = 0;
    };

    const std::map<TenantId, TenantCounters>&
    tenant_counters() const
    {
        return counters_;
    }

    /** Packets currently parked awaiting bucket refill. */
    std::size_t parked() const;

    /** Register the aggregate counters under @p prefix. */
    void register_stats(const std::string& prefix,
                        StatRegistry& registry);

  private:
    /** Runtime token bucket + park queue of one tenant. */
    struct TenantState
    {
        TenantQos qos;
        double tokens = 0.0;
        Time last_refill = 0;
        bool release_armed = false;
        struct Parked
        {
            NodeId node = 0;
            net::TraversalPacket packet;
        };
        std::deque<Parked> parked;
    };

    /** Fresh root = not a response/continuation, no executed
     *  iterations, no fork lineage: the only packets quota charges. */
    static bool
    is_fresh_root(const net::TraversalPacket& packet)
    {
        return !packet.is_response && packet.iterations_done == 0 &&
               packet.parent_id.seq == 0;
    }

    TenantState& state_of(TenantId tenant);
    void refill(TenantState& state, Time now) const;
    void arm_release(TenantId tenant, TenantState& state);
    void release(TenantId tenant);

    sim::EventQueue& queue_;
    ServeConfig config_;
    std::map<TenantId, TenantState> tenants_;
    std::map<TenantId, TenantCounters> counters_;
    std::vector<ReadmitFn> readmit_;  ///< by node id
    /** Queued-request depth per node, per SLO class. */
    std::vector<std::array<std::uint32_t, 2>> queued_;
    QosStats stats_;
};

}  // namespace pulse::serve

#endif  // PULSE_SERVE_QOS_H
