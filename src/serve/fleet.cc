#include "serve/fleet.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "common/logging.h"

namespace pulse::serve {

namespace {

/** SplitMix64-style per-tenant seed derivation: tenants get distinct,
 *  decorrelated streams from one fleet seed. */
std::uint64_t
tenant_seed(std::uint64_t fleet_seed, TenantId tenant)
{
    std::uint64_t z =
        fleet_seed + 0x9e3779b97f4a7c15ull * (tenant + 1ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

Fleet::Session::Session(const TenantLoad& l, std::uint64_t seed)
    : load(l),
      rng(seed),
      zipf(std::max<std::uint64_t>(l.keyspace, 1), l.zipf_theta)
{
    rate_max = l.rate_ops_per_s *
               (1.0 + std::max(0.0, l.diurnal_amplitude)) *
               std::max(1.0, l.flash_multiplier);
}

Fleet::Fleet(sim::EventQueue& queue, const FleetConfig& config,
             MakeOpFn make_op, SubmitFn submit)
    : queue_(queue),
      config_(config),
      make_op_(std::move(make_op)),
      submit_(std::move(submit))
{
    for (const TenantLoad& load : config_.tenants) {
        PULSE_ASSERT(load.rate_ops_per_s > 0.0,
                     "tenant %u has a non-positive arrival rate",
                     load.id);
        PULSE_ASSERT(load.diurnal_amplitude < 1.0,
                     "tenant %u diurnal amplitude must stay below 1",
                     load.id);
        sessions_.emplace(
            load.id,
            Session(load, tenant_seed(config_.seed, load.id)));
        stats_.emplace(load.id, TenantFleetStats{});
    }
}

double
Fleet::rate_at(const Session& session, Time t) const
{
    const TenantLoad& load = session.load;
    double rate = load.rate_ops_per_s;
    if (load.diurnal_amplitude > 0.0 && load.diurnal_period > 0) {
        const double phase = 2.0 * std::numbers::pi *
                             static_cast<double>(t) /
                             static_cast<double>(load.diurnal_period);
        rate *= 1.0 + load.diurnal_amplitude * std::sin(phase);
    }
    if (load.flash_duration > 0 && t >= load.flash_start &&
        t < load.flash_start + load.flash_duration) {
        rate *= load.flash_multiplier;
    }
    return std::max(rate, 1e-9);
}

double
Fleet::offered_rate(TenantId tenant, Time t) const
{
    const auto it = sessions_.find(tenant);
    PULSE_ASSERT(it != sessions_.end(), "unknown tenant %u", tenant);
    return rate_at(it->second, t);
}

Time
Fleet::draw_next(Session& session, Time from)
{
    if (session.load.arrivals == ArrivalKind::kDeterministic) {
        const double gap_s = 1.0 / rate_at(session, from);
        return from +
               std::max<Time>(static_cast<Time>(gap_s * kSecond), 1);
    }
    // Non-homogeneous Poisson process by thinning (Lewis & Shedler):
    // sample the homogeneous envelope at rate_max, accept each point
    // with probability rate(t)/rate_max. Deterministic given the Rng.
    Time t = from;
    for (;;) {
        const double u = session.rng.next_double();
        const double gap_s = -std::log1p(-u) / session.rate_max;
        t += std::max<Time>(static_cast<Time>(gap_s * kSecond), 1);
        const double accept = rate_at(session, t) / session.rate_max;
        if (session.rng.next_double() < accept) {
            return t;
        }
    }
}

void
Fleet::start(Time horizon)
{
    horizon_ = horizon;
    for (auto& [tenant, session] : sessions_) {
        session.next_arrival = draw_next(session, queue_.now());
        schedule_arrival(tenant);
    }
}

void
Fleet::extend(Time new_horizon)
{
    PULSE_ASSERT(new_horizon >= horizon_,
                 "fleet horizon may only move forward");
    horizon_ = new_horizon;
    for (auto& [tenant, session] : sessions_) {
        if (session.parked && !session.exhausted) {
            session.parked = false;
            schedule_arrival(tenant);
        }
    }
}

void
Fleet::schedule_arrival(TenantId tenant)
{
    Session& session = sessions_.at(tenant);
    if (session.exhausted) {
        return;
    }
    if (session.next_arrival >= horizon_) {
        session.parked = true;
        return;
    }
    const Time when = std::max(session.next_arrival, queue_.now());
    queue_.schedule_at(when, [this, tenant]() { on_arrival(tenant); });
}

void
Fleet::on_arrival(TenantId tenant)
{
    Session& session = sessions_.at(tenant);
    TenantFleetStats& stats = stats_[tenant];
    const Time now = queue_.now();
    const TenantLoad& load = session.load;

    // Draw the key: Zipf rank, then rotate the hot set with time.
    std::uint64_t key = session.zipf.next(session.rng);
    if (load.skew_shift > 0) {
        const auto epoch =
            static_cast<std::uint64_t>(now / load.skew_shift);
        key = (key + load.skew_stride * epoch) % session.zipf.size();
    }
    stats.arrivals++;

    const auto active = session.active_by_key.find(key);
    if (load.coalesce && active != session.active_by_key.end()) {
        // Piggyback on the traversal already queued/in flight for
        // this key; its completion answers this arrival too.
        session.entries.at(active->second).waiters.push_back(now);
        stats.coalesced++;
    } else {
        const std::uint64_t token = session.next_token++;
        KeyEntry entry;
        entry.key = key;
        entry.waiters.push_back(now);
        session.entries.emplace(token, std::move(entry));
        if (load.coalesce) {
            session.active_by_key.emplace(key, token);
        }
        session.queued.push_back(token);
        try_issue(tenant);
    }

    if (load.total_ops > 0 && stats.arrivals >= load.total_ops) {
        session.exhausted = true;
        return;
    }
    session.next_arrival = draw_next(session, session.next_arrival);
    schedule_arrival(tenant);
}

void
Fleet::try_issue(TenantId tenant)
{
    Session& session = sessions_.at(tenant);
    while (session.outstanding < session.load.window &&
           !session.queued.empty()) {
        const std::uint64_t token = session.queued.front();
        session.queued.pop_front();
        session.outstanding++;
        issue_token(tenant, token);
    }
}

void
Fleet::issue_token(TenantId tenant, std::uint64_t token)
{
    Session& session = sessions_.at(tenant);
    KeyEntry& entry = session.entries.at(token);
    entry.inflight = true;
    offload::Operation op = make_op_(tenant, entry.key);
    op.tenant = tenant;
    op.done = [this, tenant, token](offload::Completion&& completion) {
        on_completion(tenant, token, std::move(completion));
    };
    stats_[tenant].issued++;
    submit_(tenant, std::move(op));
}

void
Fleet::on_completion(TenantId tenant, std::uint64_t token,
                     offload::Completion&& completion)
{
    Session& session = sessions_.at(tenant);
    TenantFleetStats& stats = stats_[tenant];
    auto it = session.entries.find(token);
    PULSE_ASSERT(it != session.entries.end(),
                 "completion for unknown fleet token");
    KeyEntry& entry = it->second;
    session.outstanding--;

    if (completion.timed_out) {
        // Load-shed (kRejected) or gave up retransmitting: retry with
        // deterministic exponential backoff, then drop the key.
        if (entry.attempts < session.load.max_retries) {
            entry.attempts++;
            if (completion.rejected) {
                stats.shed_retries++;
            } else {
                stats.timeout_retries++;
            }
            const std::uint32_t shift =
                std::min<std::uint32_t>(entry.attempts - 1, 20);
            const Time backoff = std::max<Time>(
                session.load.retry_backoff << shift, 1);
            queue_.schedule_after(backoff, [this, tenant, token]() {
                issue_token(tenant, token);
            });
            // Keep the window slot across the backoff (issue_token
            // itself does not touch outstanding), so new arrivals
            // cannot starve a backing-off key of its slot.
            session.outstanding++;
            return;
        }
        stats.failed++;
        retire(session, token);
        try_issue(tenant);
        return;
    }

    const Time now = queue_.now();
    for (const Time arrived : entry.waiters) {
        const Time latency = now - arrived;
        stats.completed++;
        stats.latency.add(latency);
        mix_digest(tenant);
        mix_digest(entry.key);
        mix_digest(static_cast<std::uint64_t>(latency));
    }
    retire(session, token);
    try_issue(tenant);
}

void
Fleet::retire(Session& session, std::uint64_t token)
{
    const auto it = session.entries.find(token);
    if (session.load.coalesce) {
        session.active_by_key.erase(it->second.key);
    }
    session.entries.erase(it);
}

void
Fleet::mix_digest(std::uint64_t value)
{
    for (int i = 0; i < 8; i++) {
        digest_ ^= (value >> (8 * i)) & 0xFF;
        digest_ *= 0x100000001b3ull;  // FNV-1a prime
    }
}

std::size_t
Fleet::outstanding() const
{
    std::size_t total = 0;
    for (const auto& [tenant, session] : sessions_) {
        total += session.outstanding;
    }
    return total;
}

void
Fleet::save_state(StateWriter& writer) const
{
    writer.put_tag("FLET");
    writer.put_i64(horizon_);
    writer.put_u64(digest_);
    writer.put_u32(static_cast<std::uint32_t>(sessions_.size()));
    for (const auto& [tenant, session] : sessions_) {
        PULSE_ASSERT(session.outstanding == 0 &&
                         session.queued.empty() &&
                         session.entries.empty(),
                     "fleet checkpoint requires a quiesced fleet "
                     "(tenant %u still has work in flight)",
                     tenant);
        PULSE_ASSERT(session.parked || session.exhausted,
                     "fleet checkpoint requires every arrival process "
                     "parked at the horizon (tenant %u is not)",
                     tenant);
        writer.put_u32(tenant);
        std::uint64_t rng_state[4];
        session.rng.save_state(rng_state);
        for (const std::uint64_t word : rng_state) {
            writer.put_u64(word);
        }
        writer.put_i64(session.next_arrival);
        writer.put_bool(session.parked);
        writer.put_bool(session.exhausted);
        writer.put_u64(session.next_token);
        const TenantFleetStats& stats = stats_.at(tenant);
        writer.put_u64(stats.arrivals);
        writer.put_u64(stats.issued);
        writer.put_u64(stats.completed);
        writer.put_u64(stats.coalesced);
        writer.put_u64(stats.shed_retries);
        writer.put_u64(stats.timeout_retries);
        writer.put_u64(stats.failed);
        stats.latency.save_state(writer);
    }
}

void
Fleet::load_state(StateReader& reader)
{
    reader.expect_tag("FLET");
    horizon_ = reader.get_i64();
    digest_ = reader.get_u64();
    const std::uint32_t count = reader.get_u32();
    PULSE_ASSERT(count == sessions_.size(),
                 "fleet checkpoint tenant count mismatch "
                 "(%u vs configured %zu)",
                 count, sessions_.size());
    for (std::uint32_t i = 0; i < count; i++) {
        const TenantId tenant = reader.get_u32();
        const auto it = sessions_.find(tenant);
        PULSE_ASSERT(it != sessions_.end(),
                     "fleet checkpoint names unknown tenant %u",
                     tenant);
        Session& session = it->second;
        std::uint64_t rng_state[4];
        for (std::uint64_t& word : rng_state) {
            word = reader.get_u64();
        }
        session.rng.restore_state(rng_state);
        session.next_arrival = reader.get_i64();
        session.parked = reader.get_bool();
        session.exhausted = reader.get_bool();
        session.next_token = reader.get_u64();
        TenantFleetStats& stats = stats_[tenant];
        stats.arrivals = reader.get_u64();
        stats.issued = reader.get_u64();
        stats.completed = reader.get_u64();
        stats.coalesced = reader.get_u64();
        stats.shed_retries = reader.get_u64();
        stats.timeout_retries = reader.get_u64();
        stats.failed = reader.get_u64();
        stats.latency.load_state(reader);
    }
}

void
Fleet::export_metrics(trace::MetricsExporter& exporter,
                      const std::string& prefix) const
{
    for (const auto& [tenant, stats] : stats_) {
        const std::string base =
            prefix + ".tenant" + std::to_string(tenant);
        exporter.set(base + ".arrivals",
                     static_cast<double>(stats.arrivals));
        exporter.set(base + ".issued",
                     static_cast<double>(stats.issued));
        exporter.set(base + ".completed",
                     static_cast<double>(stats.completed));
        exporter.set(base + ".coalesced",
                     static_cast<double>(stats.coalesced));
        exporter.set(base + ".shed_retries",
                     static_cast<double>(stats.shed_retries));
        exporter.set(base + ".timeout_retries",
                     static_cast<double>(stats.timeout_retries));
        exporter.set(base + ".failed",
                     static_cast<double>(stats.failed));
        exporter.add_histogram(base + ".latency", stats.latency);
    }
}

}  // namespace pulse::serve
