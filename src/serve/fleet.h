/**
 * @file
 * Client-fleet generator for the multi-tenant serving plane.
 *
 * Models a production client fleet driving the cluster *open loop*:
 * each tenant's requests arrive on their own clock (Poisson or
 * deterministic) regardless of how fast earlier ones complete, so
 * overload shows up as queueing/shedding instead of silently slowing
 * the generator down — the difference between closed-loop benches
 * (bench/fig*) and what a serving deployment actually sees.
 *
 * Per tenant the generator supports:
 *   - a diurnal load curve (sinusoidal rate multiplier),
 *   - a flash-crowd window (step rate multiplier),
 *   - time-shifting Zipf key skew (the hot set rotates through the
 *     keyspace on a fixed period),
 *   - client-side batching: a bounded window of outstanding traversals
 *     with request coalescing (concurrent arrivals for one key share a
 *     single in-flight traversal),
 *   - retry with deterministic exponential backoff when a request is
 *     load-shed (kRejected) or times out.
 *
 * Everything is driven by seeded Rngs and simulated time only, so a
 * run is bit-reproducible, and save_state/load_state checkpoint a
 * quiesced fleet mid-schedule (tests/test_serving.cc round-trips a
 * checkpoint taken mid-flash-crowd and proves the continuation
 * bit-identical via the completion digest).
 */
#ifndef PULSE_SERVE_FLEET_H
#define PULSE_SERVE_FLEET_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/serial.h"
#include "common/stats.h"
#include "offload/offload_engine.h"
#include "serve/serve_config.h"
#include "sim/event_queue.h"
#include "trace/metrics_exporter.h"

namespace pulse::serve {

/** How a tenant's inter-arrival times are drawn. */
enum class ArrivalKind : std::uint8_t {
    kPoisson,        ///< open-loop Poisson process (thinning for NHPP)
    kDeterministic,  ///< evenly spaced at the instantaneous rate
};

/** Load shape of one tenant's client fleet. */
struct TenantLoad
{
    TenantId id = 0;

    ArrivalKind arrivals = ArrivalKind::kPoisson;

    /** Base arrival rate, new traversals per second. */
    double rate_ops_per_s = 10000.0;

    /**
     * Diurnal curve: rate multiplier 1 + amplitude * sin(2*pi*t/period).
     * Amplitude 0 (default) disables it; must stay < 1.
     */
    double diurnal_amplitude = 0.0;
    Time diurnal_period = kSecond;

    /** Flash crowd: rate multiplied by flash_multiplier inside
     *  [flash_start, flash_start + flash_duration). */
    Time flash_start = 0;
    Time flash_duration = 0;
    double flash_multiplier = 1.0;

    /** Key popularity: Zipf(theta) over [0, keyspace). */
    std::uint64_t keyspace = 1024;
    double zipf_theta = 0.99;

    /**
     * Time-shifting skew: every skew_shift the hot set rotates by
     * skew_stride keys (key = (rank + stride * floor(t/shift)) mod
     * keyspace). 0 disables rotation.
     */
    Time skew_shift = 0;
    std::uint64_t skew_stride = 1;

    /** Max outstanding traversals (client-side batching window). */
    std::uint32_t window = 64;

    /** Coalesce concurrent arrivals for one key onto one traversal. */
    bool coalesce = true;

    /** Retries after a shed/timeout before giving up on a key. */
    std::uint32_t max_retries = 4;

    /** Backoff before retry attempt k: retry_backoff << k. */
    Time retry_backoff = micros(50.0);

    /** Stop after this many arrivals (0 = until the horizon). */
    std::uint64_t total_ops = 0;
};

/** Fleet-wide knobs. */
struct FleetConfig
{
    std::uint64_t seed = 42;
    std::vector<TenantLoad> tenants;
};

/** Per-tenant serving telemetry. */
struct TenantFleetStats
{
    std::uint64_t arrivals = 0;   ///< generated requests
    std::uint64_t issued = 0;     ///< traversals put in flight
    std::uint64_t completed = 0;  ///< arrivals answered
    std::uint64_t coalesced = 0;  ///< arrivals piggybacked on in-flight
    std::uint64_t shed_retries = 0;     ///< re-issues after kRejected
    std::uint64_t timeout_retries = 0;  ///< re-issues after timeout
    std::uint64_t failed = 0;     ///< keys dropped after max_retries
    Histogram latency;            ///< arrival -> completion
};

/**
 * The fleet: one open-loop arrival process per tenant, feeding
 * operations through the cluster's per-client offload engines.
 */
class Fleet
{
  public:
    /** Build the traversal for (tenant, key): program + start pointer.
     *  The fleet stamps Operation::tenant and owns the completion. */
    using MakeOpFn =
        std::function<offload::Operation(TenantId, std::uint64_t)>;

    /** Hand a ready operation to a tenant's offload engine. */
    using SubmitFn =
        std::function<void(TenantId, offload::Operation&&)>;

    Fleet(sim::EventQueue& queue, const FleetConfig& config,
          MakeOpFn make_op, SubmitFn submit);

    /**
     * Start every tenant's arrival process and generate arrivals up to
     * @p horizon (exclusive); arrivals past it park until extend().
     * Completions of issued work still drain after the horizon — run
     * the event queue until quiesced.
     */
    void start(Time horizon);

    /** Resume parked arrival processes up to @p new_horizon. */
    void extend(Time new_horizon);

    /** Instantaneous offered rate of @p tenant at time @p t (op/s). */
    double offered_rate(TenantId tenant, Time t) const;

    /** Per-tenant telemetry (deterministic iteration order). */
    const std::map<TenantId, TenantFleetStats>& stats() const
    {
        return stats_;
    }

    /**
     * Order-sensitive FNV-1a digest over every completion event
     * (tenant, key, latency): two runs are behaviorally identical iff
     * their digests match. The serving tests compare an uninterrupted
     * run against a checkpoint/restore continuation with it.
     */
    std::uint64_t completion_digest() const { return digest_; }

    /** Traversals currently in flight across all tenants. */
    std::size_t outstanding() const;

    /**
     * Checkpoint support: requires a *quiesced* fleet — no outstanding
     * traversals, no queued arrivals, every arrival process parked at
     * the horizon (i.e. the event queue drained). Mid-schedule state
     * (each tenant's Rng, next arrival time, counters, histograms, the
     * digest) round-trips bit-exactly.
     */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

    /** Export per-tenant metrics under @p prefix ("serve.tenantN..."). */
    void export_metrics(trace::MetricsExporter& exporter,
                        const std::string& prefix) const;

  private:
    /**
     * One logical traversal: the key it reads, the arrival times it
     * answers (several when coalescing piggybacks later arrivals onto
     * an in-flight one), and the retry budget consumed. Keyed by a
     * per-session monotonic token so coalescing stays an explicit
     * index (active_by_key) rather than an accident of key reuse.
     */
    struct KeyEntry
    {
        std::uint64_t key = 0;
        bool inflight = false;
        std::uint32_t attempts = 0;
        std::vector<Time> waiters;
    };

    /** Runtime state of one tenant's arrival process. */
    struct Session
    {
        TenantLoad load;
        Rng rng;
        ZipfGenerator zipf;
        double rate_max = 0.0;  ///< thinning envelope (NHPP sampling)
        Time next_arrival = 0;
        bool parked = false;     ///< next_arrival is past the horizon
        bool exhausted = false;  ///< total_ops generated
        std::uint64_t outstanding = 0;
        std::uint64_t next_token = 1;
        std::deque<std::uint64_t> queued;  ///< tokens awaiting window
        std::map<std::uint64_t, KeyEntry> entries;  ///< by token
        /** key -> token of its active entry (coalescing index). */
        std::map<std::uint64_t, std::uint64_t> active_by_key;

        Session(const TenantLoad& l, std::uint64_t seed);
    };

    double rate_at(const Session& session, Time t) const;
    Time draw_next(Session& session, Time from);
    void schedule_arrival(TenantId tenant);
    void on_arrival(TenantId tenant);
    void try_issue(TenantId tenant);
    void issue_token(TenantId tenant, std::uint64_t token);
    void on_completion(TenantId tenant, std::uint64_t token,
                       offload::Completion&& completion);
    void retire(Session& session, std::uint64_t token);
    void mix_digest(std::uint64_t value);

    sim::EventQueue& queue_;
    FleetConfig config_;
    MakeOpFn make_op_;
    SubmitFn submit_;
    Time horizon_ = 0;
    std::map<TenantId, Session> sessions_;
    std::map<TenantId, TenantFleetStats> stats_;
    std::uint64_t digest_ = 0xcbf29ce484222325ull;  ///< FNV-1a basis
};

}  // namespace pulse::serve

#endif  // PULSE_SERVE_FLEET_H
