/**
 * @file
 * Boost-intrusive-style balanced trees (supplementary Table 3: AVL,
 * splay and scapegoat sets/multisets share the same lower_bound_loop —
 * supp. Listings 9-10).
 *
 * All three flavors expose the identical read path the paper offloads;
 * they differ only in rebalancing metadata maintained on insertion,
 * which the read-only evaluation never executes. The node keeps that
 * metadata word anyway so the layout is faithful:
 *
 *   meta  u64 @ 0   (AVL balance factor / splay epoch / scapegoat size)
 *   key   u64 @ 8
 *   left  u64 @ 16
 *   right u64 @ 24
 *   value u64 @ 32
 *   (padding to 64)
 */
#ifndef PULSE_DS_BALANCED_TREE_H
#define PULSE_DS_BALANCED_TREE_H

#include <memory>
#include <optional>
#include <vector>

#include "ds/ds_common.h"
#include "isa/program.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"

namespace pulse::ds {

/** Which Boost intrusive container the instance models. */
enum class TreeFlavor : std::uint8_t { kAvl, kSplay, kScapegoat };

/** Balanced search tree with the Boost lower_bound_loop read path. */
class BalancedTree
{
  public:
    static constexpr Bytes kNodeBytes = 64;
    static constexpr std::uint32_t kMetaOff = 0;
    static constexpr std::uint32_t kKeyOff = 8;
    static constexpr std::uint32_t kLeftOff = 16;
    static constexpr std::uint32_t kRightOff = 24;
    static constexpr std::uint32_t kValueOff = 32;

    /** Scratch layout (mirrors BstMap's). */
    static constexpr std::uint32_t kSpKey = 0;
    static constexpr std::uint32_t kSpCandidate = 8;
    static constexpr std::uint32_t kSpPhase = 16;
    static constexpr std::uint32_t kSpFoundKey = 24;
    static constexpr std::uint32_t kSpValue = 32;
    static constexpr std::uint32_t kSpDone = 40;
    static constexpr std::uint32_t kSpBytes = 48;

    BalancedTree(mem::GlobalMemory& memory,
                 mem::ClusterAllocator& alloc, TreeFlavor flavor);

    /** Build balanced from strictly-increasing keys. */
    void build(const std::vector<std::uint64_t>& sorted_keys,
               NodeId node = kInvalidNode);

    TreeFlavor flavor() const { return flavor_; }
    VirtAddr root() const { return root_; }
    std::uint64_t size() const { return size_; }

    /** Listing-10-style lower_bound program. */
    std::shared_ptr<const isa::Program> lower_bound_program() const;

    offload::Operation make_lower_bound(
        std::uint64_t key, offload::CompletionFn done) const;

    struct Result
    {
        bool found = false;
        std::uint64_t key = 0;
        std::uint64_t value = 0;
    };

    static Result parse(const offload::Completion& completion);

    std::optional<std::pair<std::uint64_t, std::uint64_t>>
    lower_bound_reference(std::uint64_t key) const;

  private:
    VirtAddr build_subtree(const std::vector<std::uint64_t>& keys,
                           std::size_t lo, std::size_t hi, NodeId node);

    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& alloc_;
    TreeFlavor flavor_;
    VirtAddr root_ = kNullAddr;
    std::uint64_t size_ = 0;
    mutable std::shared_ptr<const isa::Program> program_;
};

}  // namespace pulse::ds

#endif  // PULSE_DS_BALANCED_TREE_H
