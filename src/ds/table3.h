/**
 * @file
 * Supplementary Table 3: the 13 data structures across 4 libraries
 * that the paper adapts to the pulse iterator abstraction, exposed as
 * a uniform adapter registry.
 *
 * Structures sharing an internal base function share an adapter class:
 *   - list category (std::find):        LinkedList
 *       STL list, STL forward_list
 *   - hash category (bucket chains):    HashTable
 *       Boost bimap, Boost unordered_map, Boost unordered_set
 *   - Google btree (internal_locate):   BPTree
 *   - STL tree (_M_lower_bound):        BstMap
 *       std::map, std::set, std::multimap, std::multiset
 *   - Boost intrusive (lower_bound_loop): BalancedTree
 *       AVL tree, splay tree, scapegoat tree
 *
 * Each registry entry can instantiate a small remote instance and
 * execute one offloaded lookup, checked against the host reference —
 * the uniform validation the supplementary materials describe.
 */
#ifndef PULSE_DS_TABLE3_H
#define PULSE_DS_TABLE3_H

#include <functional>
#include <string>
#include <vector>

#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"

namespace pulse::ds {

/** One adapted data structure (a Table 3 row). */
struct AdapterInfo
{
    std::string name;         ///< e.g. "std::map"
    std::string category;     ///< "List" or "Tree"
    std::string library;      ///< STL / Boost / Google
    std::string api;          ///< the adapted top-level API
    std::string internal_fn;  ///< the shared base function

    /**
     * Build a small instance over @p memory / @p alloc holding
     * @p keys (strictly increasing) and return an operation that
     * looks up @p probe, plus a checker that validates the completion
     * against the host reference. The returned callable owns the
     * structure.
     */
    std::function<offload::Operation(
        mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
        const std::vector<std::uint64_t>& keys, std::uint64_t probe,
        std::function<bool(const offload::Completion&)>* checker)>
        make_lookup;
};

/** All 13 Table 3 adapters. */
const std::vector<AdapterInfo>& table3_adapters();

}  // namespace pulse::ds

#endif  // PULSE_DS_TABLE3_H
