/**
 * @file
 * Singly-linked list in disaggregated memory.
 *
 * Covers the list-category adapters of supplementary Table 3: STL
 * std::list / std::forward_list via std::find (supp. Listings 1-2).
 * Also the substrate for the traversal-length sensitivity study (supp.
 * Fig. 1a) via the fixed-hop walk program.
 *
 * Node layout (64 B):
 *   value   u64 @ 0
 *   next    u64 @ 8    (VirtAddr; 0 terminates)
 *   payload 48 B @ 16  (pattern bytes derived from value)
 */
#ifndef PULSE_DS_LINKED_LIST_H
#define PULSE_DS_LINKED_LIST_H

#include <memory>
#include <optional>
#include <vector>

#include "ds/ds_common.h"
#include "isa/program.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"

namespace pulse::ds {

/** A build-once, read-mostly remote linked list. */
class LinkedList
{
  public:
    /** Default node size in remote memory. */
    static constexpr Bytes kDefaultNodeBytes = 64;

    /** Scratch layout for find(): search value @0, result @8. */
    static constexpr std::uint32_t kSpValue = 0;
    static constexpr std::uint32_t kSpResult = 8;

    /** Scratch layout for walk(): remaining hops @0, last value @8. */
    static constexpr std::uint32_t kSpRemaining = 0;
    static constexpr std::uint32_t kSpLast = 8;

    /**
     * @param node_bytes node footprint (16..256): bigger nodes make
     *        walks stress memory bandwidth (supp. Fig. 1b); find()
     *        still coalesces only the 16 bytes it references.
     */
    LinkedList(mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
               Bytes node_bytes = kDefaultNodeBytes);

    /**
     * Append values as new nodes; nodes are placed by the allocator's
     * policy (@p node pins them when != kInvalidNode).
     */
    void build(const std::vector<std::uint64_t>& values,
               NodeId node = kInvalidNode);

    /** Head pointer (kNullAddr when empty). */
    VirtAddr head() const { return head_; }

    /** Number of nodes. */
    std::uint64_t size() const { return size_; }

    /**
     * std::find-style program: walk until value matches or the list
     * ends; scratch[kSpResult] gets the node address or kKeyNotFound.
     */
    std::shared_ptr<const isa::Program> find_program() const;

    /**
     * Fixed-hop walk: follow @c next for scratch[kSpRemaining] hops
     * (or until the list ends), recording the last node's value. Drives
     * the traversal-length sensitivity bench.
     */
    std::shared_ptr<const isa::Program> walk_program() const;

    /** Operation for find(value), starting at the head. */
    offload::Operation make_find(std::uint64_t value,
                                 offload::CompletionFn done) const;

    /** Operation walking @p hops nodes from the head. */
    offload::Operation make_walk(std::uint64_t hops,
                                 offload::CompletionFn done) const;

    /** Parse a find completion: node address, or nullopt. */
    static std::optional<VirtAddr> parse_find(
        const offload::Completion& completion);

    /** Host-side reference find (plain remote reads, no ISA). */
    std::optional<VirtAddr> find_reference(std::uint64_t value) const;

  private:
    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& alloc_;
    Bytes node_bytes_;
    VirtAddr head_ = kNullAddr;
    VirtAddr tail_ = kNullAddr;
    std::uint64_t size_ = 0;
    mutable std::shared_ptr<const isa::Program> find_program_;
    mutable std::shared_ptr<const isa::Program> walk_program_;
};

}  // namespace pulse::ds

#endif  // PULSE_DS_LINKED_LIST_H
