#include "ds/table3.h"

#include <cstring>
#include <memory>

#include "ds/balanced_tree.h"
#include "ds/bptree.h"
#include "ds/bst_map.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"

namespace pulse::ds {
namespace {

/** List-category adapter factory (std::find over linked nodes). */
AdapterInfo
list_adapter(const std::string& name, const std::string& library)
{
    AdapterInfo info;
    info.name = name;
    info.category = "List";
    info.library = library;
    info.api = "std::find(first, last, value)";
    info.internal_fn = "std::find";
    info.make_lookup =
        [](mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
           const std::vector<std::uint64_t>& keys, std::uint64_t probe,
           std::function<bool(const offload::Completion&)>* checker) {
            auto list = std::make_shared<LinkedList>(memory, alloc);
            list->build(keys, 0);
            const auto expected = list->find_reference(probe);
            *checker = [list, expected](
                           const offload::Completion& completion) {
                const auto got = LinkedList::parse_find(completion);
                return got.has_value() == expected.has_value() &&
                       (!got || *got == *expected);
            };
            return list->make_find(probe, nullptr);
        };
    return info;
}

/** Hash-category adapter factory (bucket array + chains). */
AdapterInfo
hash_adapter(const std::string& name, const std::string& api)
{
    AdapterInfo info;
    info.name = name;
    info.category = "List";
    info.library = "Boost";
    info.api = api;
    info.internal_fn = "find(key, hash)";
    info.make_lookup =
        [](mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
           const std::vector<std::uint64_t>& keys, std::uint64_t probe,
           std::function<bool(const offload::Completion&)>* checker) {
            HashTableConfig config;
            config.num_buckets = 8;
            auto table = std::make_shared<HashTable>(memory, alloc,
                                                     config);
            table->insert_many(keys);
            const auto expected = table->find_reference(probe);
            *checker = [table, expected](
                           const offload::Completion& completion) {
                const auto got = table->parse_find(completion);
                return got.found == expected.has_value() &&
                       (!got.found || got.value_word == *expected);
            };
            return table->make_find(probe, nullptr);
        };
    return info;
}

/** STL tree-category adapter factory (_M_lower_bound). */
AdapterInfo
stl_tree_adapter(const std::string& name)
{
    AdapterInfo info;
    info.name = name;
    info.category = "Tree";
    info.library = "STL";
    info.api = "find(&key)";
    info.internal_fn = "_M_lower_bound(x, y, key)";
    info.make_lookup =
        [](mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
           const std::vector<std::uint64_t>& keys, std::uint64_t probe,
           std::function<bool(const offload::Completion&)>* checker) {
            auto tree = std::make_shared<BstMap>(memory, alloc);
            tree->build(keys, 0);
            const auto expected = tree->lower_bound_reference(probe);
            *checker = [tree, expected](
                           const offload::Completion& completion) {
                const auto got = BstMap::parse_lower_bound(completion);
                if (got.found != expected.has_value()) {
                    return false;
                }
                return !got.found || (got.key == expected->first &&
                                      got.value == expected->second);
            };
            return tree->make_lower_bound(probe, nullptr);
        };
    return info;
}

/** Boost intrusive-tree adapter factory (lower_bound_loop). */
AdapterInfo
boost_tree_adapter(const std::string& name, TreeFlavor flavor)
{
    AdapterInfo info;
    info.name = name;
    info.category = "Tree";
    info.library = "Boost";
    info.api = "find(&key)";
    info.internal_fn = "lower_bound_loop(x, y, key)";
    info.make_lookup =
        [flavor](mem::GlobalMemory& memory,
                 mem::ClusterAllocator& alloc,
                 const std::vector<std::uint64_t>& keys,
                 std::uint64_t probe,
                 std::function<bool(const offload::Completion&)>*
                     checker) {
            auto tree = std::make_shared<BalancedTree>(memory, alloc,
                                                       flavor);
            tree->build(keys, 0);
            const auto expected = tree->lower_bound_reference(probe);
            *checker = [tree, expected](
                           const offload::Completion& completion) {
                const auto got = BalancedTree::parse(completion);
                if (got.found != expected.has_value()) {
                    return false;
                }
                return !got.found || (got.key == expected->first &&
                                      got.value == expected->second);
            };
            return tree->make_lower_bound(probe, nullptr);
        };
    return info;
}

/** Google btree adapter (internal_locate_plain_compare). */
AdapterInfo
google_btree_adapter()
{
    AdapterInfo info;
    info.name = "google::btree";
    info.category = "Tree";
    info.library = "Google";
    info.api = "find(key)";
    info.internal_fn = "internal_locate_plain_compare(key, iter)";
    info.make_lookup =
        [](mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
           const std::vector<std::uint64_t>& keys, std::uint64_t probe,
           std::function<bool(const offload::Completion&)>* checker) {
            BPTreeConfig config;
            config.inline_values = true;
            config.partitions = 1;
            auto tree = std::make_shared<BPTree>(memory, alloc,
                                                 config);
            std::vector<BPTreeEntry> entries;
            for (const std::uint64_t key : keys) {
                entries.push_back({key, value_pattern_word(key)});
            }
            tree->build(entries);
            const auto expected = tree->find_reference(probe);
            *checker = [tree, expected](
                           const offload::Completion& completion) {
                const auto got = BPTree::parse_find(completion);
                return got.found == expected.has_value() &&
                       (!got.found || got.payload == *expected);
            };
            return tree->make_find(probe, nullptr);
        };
    return info;
}

std::vector<AdapterInfo>
build_registry()
{
    std::vector<AdapterInfo> adapters;
    adapters.push_back(list_adapter("std::list", "STL"));
    adapters.push_back(list_adapter("std::forward_list", "STL"));
    adapters.push_back(hash_adapter("boost::bimap", "find(key, hash)"));
    adapters.push_back(
        hash_adapter("boost::unordered_map", "find(key, hash)"));
    adapters.push_back(
        hash_adapter("boost::unordered_set", "find(key, hash)"));
    adapters.push_back(google_btree_adapter());
    adapters.push_back(stl_tree_adapter("std::map"));
    adapters.push_back(stl_tree_adapter("std::set"));
    adapters.push_back(stl_tree_adapter("std::multimap"));
    adapters.push_back(stl_tree_adapter("std::multiset"));
    adapters.push_back(
        boost_tree_adapter("boost::avl_set", TreeFlavor::kAvl));
    adapters.push_back(
        boost_tree_adapter("boost::splay_set", TreeFlavor::kSplay));
    adapters.push_back(
        boost_tree_adapter("boost::sg_set", TreeFlavor::kScapegoat));
    return adapters;
}

}  // namespace

const std::vector<AdapterInfo>&
table3_adapters()
{
    static const std::vector<AdapterInfo> registry = build_registry();
    return registry;
}

}  // namespace pulse::ds
