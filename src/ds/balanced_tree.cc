#include "ds/balanced_tree.h"

#include <cstring>

#include "common/logging.h"

namespace pulse::ds {

BalancedTree::BalancedTree(mem::GlobalMemory& memory,
                           mem::ClusterAllocator& alloc,
                           TreeFlavor flavor)
    : memory_(memory), alloc_(alloc), flavor_(flavor)
{
}

VirtAddr
BalancedTree::build_subtree(const std::vector<std::uint64_t>& keys,
                            std::size_t lo, std::size_t hi, NodeId node)
{
    if (lo >= hi) {
        return kNullAddr;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    const VirtAddr addr =
        node == kInvalidNode
            ? alloc_.alloc(kNodeBytes, kNodeBytes)
            : alloc_.alloc_on(node, kNodeBytes, kNodeBytes);
    PULSE_ASSERT(addr != kNullAddr, "out of memory for tree node");

    const VirtAddr left = build_subtree(keys, lo, mid, node);
    const VirtAddr right = build_subtree(keys, mid + 1, hi, node);

    // Flavor-specific bookkeeping word (unused on the read path, but
    // present so the layout matches the intrusive containers).
    std::uint64_t meta = 0;
    switch (flavor_) {
      case TreeFlavor::kAvl:
        meta = 0;  // balance factor: balanced by construction
        break;
      case TreeFlavor::kSplay:
        meta = 1;  // access epoch
        break;
      case TreeFlavor::kScapegoat:
        meta = hi - lo;  // subtree size
        break;
    }

    std::uint8_t buffer[kNodeBytes] = {};
    const std::uint64_t value = value_pattern_word(keys[mid]);
    std::memcpy(buffer + kMetaOff, &meta, 8);
    std::memcpy(buffer + kKeyOff, &keys[mid], 8);
    std::memcpy(buffer + kLeftOff, &left, 8);
    std::memcpy(buffer + kRightOff, &right, 8);
    std::memcpy(buffer + kValueOff, &value, 8);
    memory_.write(addr, buffer, kNodeBytes);
    return addr;
}

void
BalancedTree::build(const std::vector<std::uint64_t>& sorted_keys,
                    NodeId node)
{
    PULSE_ASSERT(root_ == kNullAddr, "tree already built");
    PULSE_ASSERT(!sorted_keys.empty(), "empty build");
    size_ = sorted_keys.size();
    root_ = build_subtree(sorted_keys, 0, sorted_keys.size(), node);
}

std::shared_ptr<const isa::Program>
BalancedTree::lower_bound_program() const
{
    if (program_) {
        return program_;
    }
    using isa::cur;
    using isa::dat;
    using isa::imm;
    using isa::sp;

    // Listing 10's loop, with the branch order the Boost listing uses
    // (test "key < search" first); a candidate-revisit phase returns
    // key/value like the STL adapter.
    isa::ProgramBuilder b;
    b.load(40)
        .compare(sp(kSpPhase), imm(1))
        .jump_eq("emit")
        .compare(cur(), imm(0))
        .jump_eq("descended")
        .compare(dat(kKeyOff), sp(kSpKey))
        .jump_ge("go_left")
        .move(cur(), dat(kRightOff))
        .next_iter()
        .label("go_left")
        .move(sp(kSpCandidate), cur())
        .move(cur(), dat(kLeftOff))
        .next_iter()
        .label("descended")
        .compare(sp(kSpCandidate), imm(0))
        .jump_eq("notfound")
        .move(cur(), sp(kSpCandidate))
        .move(sp(kSpPhase), imm(1))
        .next_iter()
        .label("notfound")
        .move(sp(kSpDone), imm(kKeyNotFound))
        .ret()
        .label("emit")
        .move(sp(kSpFoundKey), dat(kKeyOff))
        .move(sp(kSpValue), dat(kValueOff))
        .move(sp(kSpDone), imm(1))
        .ret();
    b.scratch_bytes(kSpBytes);
    program_ = std::make_shared<const isa::Program>(b.build());
    return program_;
}

offload::Operation
BalancedTree::make_lower_bound(std::uint64_t key,
                               offload::CompletionFn done) const
{
    offload::Operation op;
    op.program = lower_bound_program();
    op.start_ptr = root_;
    op.init_scratch.assign(kSpBytes, 0);
    std::memcpy(op.init_scratch.data() + kSpKey, &key, 8);
    op.init_cpu_time = nanos(25.0);
    op.done = std::move(done);
    return op;
}

BalancedTree::Result
BalancedTree::parse(const offload::Completion& completion)
{
    Result result;
    if (completion.status != isa::TraversalStatus::kDone ||
        completion.scratch.size() < kSpBytes) {
        return result;
    }
    const auto word = [&](std::uint32_t off) {
        std::uint64_t value = 0;
        std::memcpy(&value, completion.scratch.data() + off, 8);
        return value;
    };
    if (word(kSpDone) != 1) {
        return result;
    }
    result.found = true;
    result.key = word(kSpFoundKey);
    result.value = word(kSpValue);
    return result;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
BalancedTree::lower_bound_reference(std::uint64_t key) const
{
    VirtAddr x = root_;
    VirtAddr y = kNullAddr;
    while (x != kNullAddr) {
        const std::uint64_t node_key =
            memory_.read_as<std::uint64_t>(x + kKeyOff);
        if (node_key >= key) {
            y = x;
            x = memory_.read_as<std::uint64_t>(x + kLeftOff);
        } else {
            x = memory_.read_as<std::uint64_t>(x + kRightOff);
        }
    }
    if (y == kNullAddr) {
        return std::nullopt;
    }
    return std::make_pair(memory_.read_as<std::uint64_t>(y + kKeyOff),
                          memory_.read_as<std::uint64_t>(y + kValueOff));
}

}  // namespace pulse::ds
