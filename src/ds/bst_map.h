/**
 * @file
 * Binary-search-tree map in disaggregated memory (supplementary
 * Table 3's STL tree category: std::map / set / multimap / multiset,
 * whose find() shares the internal _M_lower_bound loop — supp.
 * Listings 7-8).
 *
 * Node layout (64 B):
 *   key   u64 @ 0
 *   left  u64 @ 8
 *   right u64 @ 16
 *   value u64 @ 24
 *   (padding to 64)
 *
 * The traversal is Listing 8's loop: descend comparing the search key,
 * tracking the best lower-bound candidate (y) in the scratch_pad,
 * terminating when cur_ptr goes null — which exercises the ISA's
 * null-page LOAD semantics. A final phase revisits the candidate node
 * to return its key and value, so exact-match find() needs no extra
 * client round trip.
 */
#ifndef PULSE_DS_BST_MAP_H
#define PULSE_DS_BST_MAP_H

#include <memory>
#include <optional>
#include <vector>

#include "ds/ds_common.h"
#include "isa/program.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"

namespace pulse::ds {

/** Balanced (build-time) BST over disaggregated memory. */
class BstMap
{
  public:
    static constexpr Bytes kNodeBytes = 64;
    static constexpr std::uint32_t kKeyOff = 0;
    static constexpr std::uint32_t kLeftOff = 8;
    static constexpr std::uint32_t kRightOff = 16;
    static constexpr std::uint32_t kValueOff = 24;

    /** Scratch layout. */
    static constexpr std::uint32_t kSpKey = 0;
    static constexpr std::uint32_t kSpCandidate = 8;  ///< y
    static constexpr std::uint32_t kSpPhase = 16;
    static constexpr std::uint32_t kSpFoundKey = 24;
    static constexpr std::uint32_t kSpValue = 32;
    static constexpr std::uint32_t kSpDone = 40;
    static constexpr std::uint32_t kSpBytes = 48;

    BstMap(mem::GlobalMemory& memory, mem::ClusterAllocator& alloc);

    /**
     * Build a balanced tree from strictly-increasing keys; values are
     * derived deterministically (value_pattern_word).
     */
    void build(const std::vector<std::uint64_t>& sorted_keys,
               NodeId node = kInvalidNode);

    VirtAddr root() const { return root_; }
    std::uint64_t size() const { return size_; }
    std::uint32_t depth() const { return depth_; }

    /** Listing-8-style lower_bound + candidate revisit program. */
    std::shared_ptr<const isa::Program> lower_bound_program() const;

    /** Operation: lower_bound(key). */
    offload::Operation make_lower_bound(
        std::uint64_t key, offload::CompletionFn done) const;

    struct LowerBoundResult
    {
        bool found = false;       ///< some key >= search key exists
        std::uint64_t key = 0;    ///< the lower-bound key
        std::uint64_t value = 0;  ///< its value
        VirtAddr node = kNullAddr;
    };

    static LowerBoundResult parse_lower_bound(
        const offload::Completion& completion);

    /** Host-side reference. */
    std::optional<std::pair<std::uint64_t, std::uint64_t>>
    lower_bound_reference(std::uint64_t key) const;

  private:
    VirtAddr build_subtree(const std::vector<std::uint64_t>& keys,
                           std::size_t lo, std::size_t hi, NodeId node,
                           std::uint32_t level);

    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& alloc_;
    VirtAddr root_ = kNullAddr;
    std::uint64_t size_ = 0;
    std::uint32_t depth_ = 0;
    mutable std::shared_ptr<const isa::Program> program_;
};

}  // namespace pulse::ds

#endif  // PULSE_DS_BST_MAP_H
