#include "ds/bst_map.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace pulse::ds {

BstMap::BstMap(mem::GlobalMemory& memory, mem::ClusterAllocator& alloc)
    : memory_(memory), alloc_(alloc)
{
}

VirtAddr
BstMap::build_subtree(const std::vector<std::uint64_t>& keys,
                      std::size_t lo, std::size_t hi, NodeId node,
                      std::uint32_t level)
{
    if (lo >= hi) {
        return kNullAddr;
    }
    depth_ = std::max(depth_, level + 1);
    const std::size_t mid = lo + (hi - lo) / 2;
    const VirtAddr addr =
        node == kInvalidNode
            ? alloc_.alloc(kNodeBytes, kNodeBytes)
            : alloc_.alloc_on(node, kNodeBytes, kNodeBytes);
    PULSE_ASSERT(addr != kNullAddr, "out of memory for BST node");

    const VirtAddr left =
        build_subtree(keys, lo, mid, node, level + 1);
    const VirtAddr right =
        build_subtree(keys, mid + 1, hi, node, level + 1);

    std::uint8_t buffer[kNodeBytes] = {};
    const std::uint64_t value = value_pattern_word(keys[mid]);
    std::memcpy(buffer + kKeyOff, &keys[mid], 8);
    std::memcpy(buffer + kLeftOff, &left, 8);
    std::memcpy(buffer + kRightOff, &right, 8);
    std::memcpy(buffer + kValueOff, &value, 8);
    memory_.write(addr, buffer, kNodeBytes);
    return addr;
}

void
BstMap::build(const std::vector<std::uint64_t>& sorted_keys,
              NodeId node)
{
    PULSE_ASSERT(root_ == kNullAddr, "tree already built");
    PULSE_ASSERT(!sorted_keys.empty(), "empty build");
    for (std::size_t i = 1; i < sorted_keys.size(); i++) {
        PULSE_ASSERT(sorted_keys[i - 1] < sorted_keys[i],
                     "keys must be strictly increasing");
    }
    size_ = sorted_keys.size();
    root_ = build_subtree(sorted_keys, 0, sorted_keys.size(), node, 0);
}

std::shared_ptr<const isa::Program>
BstMap::lower_bound_program() const
{
    if (program_) {
        return program_;
    }
    using isa::cur;
    using isa::dat;
    using isa::imm;
    using isa::sp;

    isa::ProgramBuilder b;
    b.load(32)
        // Phase 1: cur_ptr points at the recorded candidate; emit it.
        .compare(sp(kSpPhase), imm(1))
        .jump_eq("emit")
        // Listing 8's loop body. Null means the descent is over.
        .compare(cur(), imm(0))
        .jump_eq("descended")
        .compare(dat(kKeyOff), sp(kSpKey))
        .jump_lt("go_right")
        // x->key >= key: x is the best candidate so far; go left.
        .move(sp(kSpCandidate), cur())
        .move(cur(), dat(kLeftOff))
        .next_iter()
        .label("go_right")
        .move(cur(), dat(kRightOff))
        .next_iter()
        // Descent finished: revisit the candidate (if any) to fetch
        // its key/value in one extra iteration.
        .label("descended")
        .compare(sp(kSpCandidate), imm(0))
        .jump_eq("notfound")
        .move(cur(), sp(kSpCandidate))
        .move(sp(kSpPhase), imm(1))
        .next_iter()
        .label("notfound")
        .move(sp(kSpDone), imm(kKeyNotFound))
        .ret()
        .label("emit")
        .move(sp(kSpFoundKey), dat(kKeyOff))
        .move(sp(kSpValue), dat(kValueOff))
        .move(sp(kSpDone), imm(1))
        .ret();
    b.scratch_bytes(kSpBytes);
    program_ = std::make_shared<const isa::Program>(b.build());
    return program_;
}

offload::Operation
BstMap::make_lower_bound(std::uint64_t key,
                         offload::CompletionFn done) const
{
    offload::Operation op;
    op.program = lower_bound_program();
    op.start_ptr = root_;
    op.init_scratch.assign(kSpBytes, 0);
    std::memcpy(op.init_scratch.data() + kSpKey, &key, 8);
    op.init_cpu_time = nanos(25.0);
    op.done = std::move(done);
    return op;
}

BstMap::LowerBoundResult
BstMap::parse_lower_bound(const offload::Completion& completion)
{
    LowerBoundResult result;
    if (completion.status != isa::TraversalStatus::kDone ||
        completion.scratch.size() < kSpBytes) {
        return result;
    }
    const auto word = [&](std::uint32_t off) {
        std::uint64_t value = 0;
        std::memcpy(&value, completion.scratch.data() + off, 8);
        return value;
    };
    if (word(kSpDone) != 1) {
        return result;
    }
    result.found = true;
    result.key = word(kSpFoundKey);
    result.value = word(kSpValue);
    result.node = word(kSpCandidate);
    return result;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
BstMap::lower_bound_reference(std::uint64_t key) const
{
    VirtAddr x = root_;
    VirtAddr y = kNullAddr;
    while (x != kNullAddr) {
        const std::uint64_t node_key =
            memory_.read_as<std::uint64_t>(x + kKeyOff);
        if (node_key >= key) {
            y = x;
            x = memory_.read_as<std::uint64_t>(x + kLeftOff);
        } else {
            x = memory_.read_as<std::uint64_t>(x + kRightOff);
        }
    }
    if (y == kNullAddr) {
        return std::nullopt;
    }
    return std::make_pair(memory_.read_as<std::uint64_t>(y + kKeyOff),
                          memory_.read_as<std::uint64_t>(y + kValueOff));
}

}  // namespace pulse::ds
