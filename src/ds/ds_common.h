/**
 * @file
 * Shared conventions of the pulse data-structure library.
 *
 * All adapted structures (paper section 3 + supplementary Table 3) lay
 * their nodes out in disaggregated memory through ClusterAllocator and
 * build programs whose aggregated LOAD footprint fits the accelerator's
 * 256 B limit. Keys are 64-bit; payloads are either inline 64-bit words
 * or pointers to out-of-line value objects.
 */
#ifndef PULSE_DS_DS_COMMON_H
#define PULSE_DS_DS_COMMON_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::ds {

/**
 * Sentinel written into the result slot of a find()'s scratch_pad when
 * the key does not exist (Listing 3's KEY_NOT_FOUND).
 */
inline constexpr std::uint64_t kKeyNotFound = 0xDEADBEEFDEADBEEFull;

/**
 * Padding key for unused slots in bulk-built B+Tree leaves: INT64_MAX,
 * so it sorts after every legal key under the ISA's signed COMPARE.
 * Real keys must stay below this value.
 */
inline constexpr std::uint64_t kPadKey = 0x7FFFFFFFFFFFFFFFull;

/**
 * Deterministic value-object generator: fills @p out with a pattern
 * derived from @p key so integrity can be verified after traversals
 * without storing expected values host-side.
 */
void fill_value_pattern(std::uint64_t key, std::uint8_t* out, Bytes len);

/** First 8 bytes of the pattern (what programs fold or return). */
std::uint64_t value_pattern_word(std::uint64_t key);

/** 64-bit mix used as the hash function of the hash-table adapters. */
std::uint64_t mix64(std::uint64_t key);

}  // namespace pulse::ds

#endif  // PULSE_DS_DS_COMMON_H
