#include "ds/bptree.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace pulse::ds {
namespace {

constexpr Bytes kNodeBytes = 256;

std::string
lbl(const char* stem, std::uint32_t i)
{
    return std::string(stem) + std::to_string(i);
}

}  // namespace

BPTree::BPTree(mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
               const BPTreeConfig& config)
    : memory_(memory), alloc_(alloc), config_(config)
{
    PULSE_ASSERT(config.leaf_slots >= 1 && config.leaf_slots <= 15,
                 "leaf_slots out of range");
    PULSE_ASSERT(config.leaf_fill >= 1 &&
                     config.leaf_fill <= config.leaf_slots,
                 "leaf_fill out of range");
    PULSE_ASSERT(config.inner_fill >= 2 && config.inner_fill <= 16,
                 "inner_fill out of range");
    PULSE_ASSERT(config.partitions >= 1 &&
                     config.partitions <= memory.num_nodes(),
                 "bad partition count");
}

VirtAddr
BPTree::alloc_node(NodeId preferred, NodeId* placed)
{
    VirtAddr addr;
    if (config_.partitioned) {
        addr = alloc_.alloc_on(preferred, kNodeBytes, kNodeBytes);
        if (placed != nullptr) {
            *placed = preferred;
        }
    } else {
        addr = alloc_.alloc(kNodeBytes, kNodeBytes);
        if (placed != nullptr) {
            *placed = *memory_.address_map().node_for(addr);
        }
    }
    PULSE_ASSERT(addr != kNullAddr, "out of memory for tree node");
    return addr;
}

void
BPTree::build(const std::vector<BPTreeEntry>& sorted_entries)
{
    PULSE_ASSERT(root_ == kNullAddr, "tree already built");
    PULSE_ASSERT(!sorted_entries.empty(), "empty build");
    for (std::size_t i = 1; i < sorted_entries.size(); i++) {
        PULSE_ASSERT(sorted_entries[i - 1].key < sorted_entries[i].key,
                     "keys must be strictly increasing");
    }
    PULSE_ASSERT(sorted_entries.back().key < kPadKey,
                 "keys must stay below kPadKey");

    size_ = sorted_entries.size();
    const std::uint64_t fill = config_.leaf_fill;
    num_leaves_ = (size_ + fill - 1) / fill;

    // ---- Value objects (out-of-line payloads) ----
    // Allocated before the leaves, optionally in shuffled key order
    // (see BPTreeConfig::scatter_values).
    std::vector<VirtAddr> value_addrs;
    if (!config_.inline_values) {
        value_addrs.assign(size_, kNullAddr);
        std::vector<std::uint64_t> order(size_);
        for (std::uint64_t i = 0; i < size_; i++) {
            order[i] = i;
        }
        if (config_.scatter_values) {
            Rng shuffle_rng(0x5CA77E5);
            for (std::uint64_t i = size_; i > 1; i--) {
                std::swap(order[i - 1],
                          order[shuffle_rng.next_below(i)]);
            }
        }
        std::vector<std::uint8_t> vbuf(config_.value_bytes);
        for (const std::uint64_t index : order) {
            // Under partitioned placement, co-locate the value with
            // its leaf's partition.
            const NodeId preferred = static_cast<NodeId>(
                (index / fill) * config_.partitions / num_leaves_);
            const VirtAddr value =
                config_.partitioned
                    ? alloc_.alloc_on(preferred, config_.value_bytes,
                                      256)
                    : alloc_.alloc(config_.value_bytes, 256);
            PULSE_ASSERT(value != kNullAddr,
                         "out of memory for value object");
            fill_value_pattern(sorted_entries[index].key, vbuf.data(),
                               vbuf.size());
            memory_.write(value, vbuf.data(), vbuf.size());
            value_addrs[index] = value;
        }
    }

    // ---- Leaf level ----
    std::vector<LevelNode> level;
    level.reserve(num_leaves_);
    VirtAddr prev_leaf = kNullAddr;
    for (std::uint64_t li = 0; li < num_leaves_; li++) {
        const std::uint64_t begin = li * fill;
        const std::uint64_t end =
            std::min<std::uint64_t>(begin + fill, size_);
        const auto count = static_cast<std::uint32_t>(end - begin);
        const NodeId preferred = static_cast<NodeId>(
            li * config_.partitions / num_leaves_);

        NodeId placed = 0;
        const VirtAddr addr = alloc_node(preferred, &placed);
        if (config_.leaf_alloc_gap_max > 0) {
            // Fragmentation model: waste a random gap after the leaf,
            // drawn from the same allocation stream so it interleaves
            // with the leaves (within uniform-policy slabs too).
            const Bytes gap =
                gap_rng_.next_below(config_.leaf_alloc_gap_max + 1);
            if (gap > 0) {
                if (config_.partitioned) {
                    alloc_.alloc_on(placed, gap, 1);
                } else {
                    alloc_.alloc(gap, 1);
                }
            }
        }

        std::uint8_t buffer[kNodeBytes] = {};
        const std::uint64_t meta =
            (static_cast<std::uint64_t>(count) << 8) | 1;
        std::memcpy(buffer + kMetaOff, &meta, 8);
        // next patched when the successor leaf is allocated.
        for (std::uint32_t s = 0; s < config_.leaf_slots; s++) {
            std::uint64_t key = kPadKey;
            std::uint64_t payload = 0;
            if (s < count) {
                const BPTreeEntry& entry = sorted_entries[begin + s];
                key = entry.key;
                payload = config_.inline_values
                              ? entry.payload
                              : value_addrs[begin + s];
            }
            const std::uint32_t off = kLeafSlotsOff + s * kLeafSlotBytes;
            std::memcpy(buffer + off, &key, 8);
            std::memcpy(buffer + off + 8, &payload, 8);
        }
        memory_.write(addr, buffer, kNodeBytes);

        if (prev_leaf != kNullAddr) {
            memory_.write_as<std::uint64_t>(prev_leaf + kLeafNextOff,
                                            addr);
        } else {
            first_leaf_ = addr;
        }
        prev_leaf = addr;
        level.push_back(LevelNode{addr,
                                  sorted_entries[end - 1].key, placed});
        leaf_index_.emplace_back(sorted_entries[end - 1].key, placed);
    }
    depth_ = 1;

    // ---- Inner levels ----
    while (level.size() > 1) {
        std::vector<LevelNode> parent_level;
        const std::uint64_t fanout = config_.inner_fill;
        const std::uint64_t parents =
            (level.size() + fanout - 1) / fanout;
        parent_level.reserve(parents);
        for (std::uint64_t pi = 0; pi < parents; pi++) {
            const std::uint64_t begin = pi * fanout;
            const std::uint64_t end =
                std::min<std::uint64_t>(begin + fanout, level.size());
            const auto children = static_cast<std::uint32_t>(end - begin);

            NodeId placed = 0;
            const VirtAddr addr =
                alloc_node(level[begin].placed_on, &placed);

            std::uint8_t buffer[kNodeBytes] = {};
            // count = number of separator keys = children - 1;
            // keys[i] = max key of child i.
            const std::uint64_t meta =
                static_cast<std::uint64_t>(children - 1) << 8;
            std::memcpy(buffer + kMetaOff, &meta, 8);
            for (std::uint32_t c = 0; c < children; c++) {
                if (c + 1 < children) {
                    std::memcpy(buffer + kInnerKeysOff + c * 8,
                                &level[begin + c].max_key, 8);
                }
                std::memcpy(buffer + kInnerChildrenOff + c * 8,
                            &level[begin + c].addr, 8);
            }
            // Pad unused key slots so stray compares sort high.
            for (std::uint32_t k = children > 0 ? children - 1 : 0;
                 k < kInnerMaxKeys; k++) {
                std::memcpy(buffer + kInnerKeysOff + k * 8, &kPadKey, 8);
            }
            memory_.write(addr, buffer, kNodeBytes);
            parent_level.push_back(
                LevelNode{addr, level[end - 1].max_key, placed});
        }
        level = std::move(parent_level);
        depth_++;
    }
    root_ = level.front().addr;
}

NodeId
BPTree::node_of_key(std::uint64_t key) const
{
    const auto it = std::lower_bound(
        leaf_index_.begin(), leaf_index_.end(), key,
        [](const std::pair<std::uint64_t, NodeId>& e,
           std::uint64_t k) { return e.first < k; });
    if (it == leaf_index_.end()) {
        return leaf_index_.back().second;
    }
    return it->second;
}

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

void
BPTree::emit_descend(isa::ProgramBuilder& b,
                     const std::string& leaf_label) const
{
    using isa::cur;
    using isa::dat;
    using isa::imm;
    using isa::sp;

    // Leaf test: meta bit 0.
    b.move(sp(kSpTmp), dat(kMetaOff))
        .band(sp(kSpTmp), sp(kSpTmp), imm(1))
        .compare(sp(kSpTmp), imm(1))
        .jump_eq(leaf_label)
        // count = meta >> 8 (DIV doubles as the shift).
        .move(sp(kSpCnt), dat(kMetaOff))
        .div(sp(kSpCnt), sp(kSpCnt), imm(256));

    // Unrolled Google-btree routing: child[i] for the first i with
    // i >= count (i.e. i == count) or key <= keys[i].
    for (std::uint32_t i = 0; i < kInnerMaxKeys; i++) {
        b.compare(imm(i), sp(kSpCnt))
            .jump_ge(lbl("take", i))
            .compare(sp(kSpKey), dat(kInnerKeysOff + i * 8))
            .jump_le(lbl("take", i));
    }
    // Fallthrough: key greater than every separator -> last child.
    b.label(lbl("take", kInnerMaxKeys))
        .move(cur(), dat(kInnerChildrenOff + kInnerMaxKeys * 8))
        .next_iter();
    for (std::uint32_t i = 0; i < kInnerMaxKeys; i++) {
        b.label(lbl("take", i))
            .move(cur(), dat(kInnerChildrenOff + i * 8))
            .next_iter();
    }
}

std::shared_ptr<const isa::Program>
BPTree::find_program() const
{
    if (find_program_) {
        return find_program_;
    }
    using isa::dat;
    using isa::imm;
    using isa::sp;

    isa::ProgramBuilder b;
    b.load(256);
    emit_descend(b, "leaf");
    b.label("leaf");
    for (std::uint32_t i = 0; i < config_.leaf_slots; i++) {
        const std::uint32_t off = kLeafSlotsOff + i * kLeafSlotBytes;
        b.compare(sp(kSpKey), dat(off)).jump_eq(lbl("found", i));
    }
    b.move(sp(kSpFlag), imm(kKeyNotFound)).ret();
    for (std::uint32_t i = 0; i < config_.leaf_slots; i++) {
        const std::uint32_t off = kLeafSlotsOff + i * kLeafSlotBytes;
        b.label(lbl("found", i))
            .move(sp(kSpResult), dat(off + 8))
            .move(sp(kSpFlag), imm(1))
            .ret();
    }
    b.scratch_bytes(kSpBytes);
    find_program_ = std::make_shared<const isa::Program>(b.build());
    return find_program_;
}

std::shared_ptr<const isa::Program>
BPTree::scan_fold_program() const
{
    PULSE_ASSERT(!config_.inline_values,
                 "scan-fold expects out-of-line value objects");
    if (scan_program_) {
        return scan_program_;
    }
    using isa::cur;
    using isa::dat;
    using isa::imm;
    using isa::sp;

    const std::uint32_t slots = config_.leaf_slots;
    const auto stage_bytes =
        static_cast<std::uint16_t>(slots * kLeafSlotBytes);

    isa::ProgramBuilder b;
    b.load(256)
        // Phase dispatch: >= 2 -> value phases, == 1 -> leaf, else
        // descend.
        .compare(sp(kSpPhase), imm(2))
        .jump_ge("values")
        .compare(sp(kSpPhase), imm(1))
        .jump_eq("leafsec");
    emit_descend(b, "enterleaf");
    b.label("enterleaf").move(sp(kSpPhase), imm(1));

    // Leaf phase: stage the whole slot array + next pointer into the
    // scratch_pad (two moves), pick the first slot to consume, and
    // jump into its value phase.
    b.label("leafsec")
        .move(sp(kSpNextStage), dat(kLeafNextOff))
        .move(sp(kSpStage, stage_bytes),
              dat(kLeafSlotsOff, stage_bytes));
    for (std::uint32_t j = 0; j < slots; j++) {
        const std::uint32_t key_off = kSpStage + j * kLeafSlotBytes;
        // Padding ends the leaf; keys below the start key are skipped
        // (only possible in the first leaf).
        b.compare(sp(key_off), imm(kPadKey))
            .jump_eq("advance")
            .compare(sp(key_off), sp(kSpKey))
            .jump_ge(lbl("start", j));
    }
    // Every real key is below the start key: advance.
    b.label("advance")
        .compare(sp(kSpNextStage), imm(0))
        .jump_eq("finish")
        .move(cur(), sp(kSpNextStage))
        .next_iter();
    for (std::uint32_t j = 0; j < slots; j++) {
        const std::uint32_t ptr_off =
            kSpStage + j * kLeafSlotBytes + 8;
        b.label(lbl("start", j))
            .move(cur(), sp(ptr_off))
            .move(sp(kSpPhase), imm(2 + j))
            .next_iter();
    }

    // Value phases: data holds the 240 B value object of staged slot j.
    b.label("values");
    for (std::uint32_t j = 0; j < slots; j++) {
        b.compare(sp(kSpPhase), imm(2 + j)).jump_eq(lbl("val", j));
    }
    b.jump_always("finish");  // unreachable with a sane phase
    for (std::uint32_t j = 0; j < slots; j++) {
        const std::uint32_t key_off = kSpStage + j * kLeafSlotBytes;
        b.label(lbl("val", j))
            .add(sp(kSpResult), sp(kSpResult), dat(0))
            .add(sp(kSpCount), sp(kSpCount), imm(1))
            .move(sp(kSpLastKey), sp(key_off))
            .sub(sp(kSpRemaining), sp(kSpRemaining), imm(1))
            .compare(sp(kSpRemaining), imm(0))
            .jump_eq("finish");
        if (j + 1 < slots) {
            const std::uint32_t next_key =
                kSpStage + (j + 1) * kLeafSlotBytes;
            b.compare(sp(next_key), imm(kPadKey))
                .jump_eq(lbl("adv", j))
                .move(cur(), sp(next_key + 8))
                .move(sp(kSpPhase), imm(2 + j + 1))
                .next_iter()
                .label(lbl("adv", j));
        }
        // Leaf exhausted: move to the staged next leaf.
        b.compare(sp(kSpNextStage), imm(0))
            .jump_eq("finish")
            .move(cur(), sp(kSpNextStage))
            .move(sp(kSpPhase), imm(1))
            .next_iter();
    }
    b.label("finish").move(sp(kSpFlag), imm(1)).ret();
    b.scratch_bytes(kSpStage + slots * kLeafSlotBytes);
    scan_program_ = std::make_shared<const isa::Program>(b.build());
    return scan_program_;
}

std::shared_ptr<const isa::Program>
BPTree::aggregate_program(AggKind kind) const
{
    PULSE_ASSERT(config_.inline_values,
                 "aggregate expects inline payloads");
    auto& slot = agg_programs_[static_cast<std::size_t>(kind)];
    if (slot) {
        return slot;
    }
    using isa::cur;
    using isa::dat;
    using isa::imm;
    using isa::sp;

    isa::ProgramBuilder b;
    b.load(256)
        .compare(sp(kSpPhase), imm(1))
        .jump_eq("scansec");
    emit_descend(b, "enterleaf");
    b.label("enterleaf").move(sp(kSpPhase), imm(1));
    b.label("scansec");
    for (std::uint32_t i = 0; i < config_.leaf_slots; i++) {
        const std::uint32_t key_off = kLeafSlotsOff + i * kLeafSlotBytes;
        const std::uint32_t val_off = key_off + 8;
        // Keys are sorted; padding (INT64_MAX) exceeds any hi bound.
        b.compare(dat(key_off), sp(kSpKey2))
            .jump_gt("finish")
            .compare(dat(key_off), sp(kSpKey))
            .jump_lt(lbl("skip", i));
        switch (kind) {
          case AggKind::kSum:
            b.add(sp(kSpResult), sp(kSpResult), dat(val_off))
                .add(sp(kSpCount), sp(kSpCount), imm(1));
            break;
          case AggKind::kCount:
            b.add(sp(kSpCount), sp(kSpCount), imm(1));
            break;
          case AggKind::kMin:
            b.compare(dat(val_off), sp(kSpResult))
                .jump_ge(lbl("skip", i))
                .move(sp(kSpResult), dat(val_off));
            break;
          case AggKind::kMax:
            b.compare(dat(val_off), sp(kSpResult))
                .jump_le(lbl("skip", i))
                .move(sp(kSpResult), dat(val_off));
            break;
        }
        b.label(lbl("skip", i));
    }
    b.compare(dat(kLeafNextOff), imm(0))
        .jump_eq("finish")
        .move(cur(), dat(kLeafNextOff))
        .next_iter();
    b.label("finish").move(sp(kSpFlag), imm(1)).ret();
    b.scratch_bytes(kSpBytes);
    slot = std::make_shared<const isa::Program>(b.build());
    return slot;
}

std::shared_ptr<const isa::Program>
BPTree::aggregate_forked_program() const
{
    PULSE_ASSERT(config_.inline_values,
                 "aggregate expects inline payloads");
    if (agg_forked_program_) {
        return agg_forked_program_;
    }
    using isa::cur;
    using isa::dat;
    using isa::imm;
    using isa::sp;

    isa::ProgramBuilder b;
    b.load(256)
        .reduce(isa::ReduceOp::kAdd, kFkSum, 2)
        .compare(sp(kFkPhase), imm(1))
        .jump_eq("scansec")
        .compare(sp(kFkDepth), imm(0))
        .jump_neq("seq");

    // Root visit. A root that is itself a leaf scans sequentially.
    b.move(sp(kSpTmp), dat(kMetaOff))
        .band(sp(kSpTmp), sp(kSpTmp), imm(1))
        .compare(sp(kSpTmp), imm(1))
        .jump_eq("enterleaf");

    // Inner root: the window is split into at most kMaxSpawnsPerVisit
    // disjoint chunks at the separator keys, one SPAWN per chunk.
    // Chunk s starts at child 2s and covers children 2s and 2s+1 —
    // the spawned traversal descends by its chunk's lo and the leaf
    // sibling chain carries its scan across the pair's boundary, so
    // even a full root (16 children) forks within the per-visit spawn
    // budget. The chunk windows are narrowed to the separator ranges,
    // so they are disjoint and no entry is counted twice.
    static_assert(kInnerMaxKeys + 1 <= 2 * isa::kMaxSpawnsPerVisit,
                  "pairwise chunking must cover a full root");
    b.move(sp(kFkOwnLo), sp(kFkLo))
        .move(sp(kFkOwnHi), sp(kFkHi))
        .move(sp(kSpCnt), dat(kMetaOff))
        .div(sp(kSpCnt), sp(kSpCnt), imm(256));
    for (std::uint32_t s = 0; s < isa::kMaxSpawnsPerVisit; s++) {
        const std::uint32_t first = 2 * s;  // chunk's first child
        // Chunks whose first child is past the last one don't exist.
        b.compare(imm(first), sp(kSpCnt)).jump_gt("spawned");
        // chunk_hi = min(hi, keys[2s+1]); the last chunk is uncapped.
        b.move(sp(kFkChildHi), sp(kFkOwnHi));
        if (first + 1 < kInnerMaxKeys) {
            b.compare(imm(first + 1), sp(kSpCnt))
                .jump_ge(lbl("nocap", s))
                .compare(dat(kInnerKeysOff + (first + 1) * 8),
                         sp(kFkChildHi))
                .jump_ge(lbl("nocap", s))
                .move(sp(kFkChildHi),
                      dat(kInnerKeysOff + (first + 1) * 8))
                .label(lbl("nocap", s));
        }
        // chunk_lo = max(lo, keys[2s-1] + 1).
        b.move(sp(kFkChildLo), sp(kFkOwnLo));
        if (s > 0) {
            b.move(sp(kFkTmp), dat(kInnerKeysOff + (first - 1) * 8))
                .add(sp(kFkTmp), sp(kFkTmp), imm(1))
                .compare(sp(kFkTmp), sp(kFkChildLo))
                .jump_le(lbl("noraise", s))
                .move(sp(kFkChildLo), sp(kFkTmp))
                .label(lbl("noraise", s));
        }
        b.compare(sp(kFkChildLo), sp(kFkChildHi))
            .jump_gt(lbl("skip", s))
            // Stage the chunk's argument window and fork.
            .move(sp(kFkLo), sp(kFkChildLo))
            .move(sp(kFkHi), sp(kFkChildHi))
            .move(sp(kFkDepth), imm(1))
            .spawn(dat(kInnerChildrenOff + first * 8), 0, kFkArgBytes)
            .label(lbl("skip", s));
    }
    b.label("spawned").move(sp(kFkFlag), imm(1)).join();

    // Child path: sequential descend by lo, then the windowed scan.
    b.label("seq");
    emit_descend(b, "enterleaf");
    b.label("enterleaf").move(sp(kFkPhase), imm(1));
    b.label("scansec");
    for (std::uint32_t i = 0; i < config_.leaf_slots; i++) {
        const std::uint32_t key_off = kLeafSlotsOff + i * kLeafSlotBytes;
        const std::uint32_t val_off = key_off + 8;
        // Keys are sorted; padding (INT64_MAX) exceeds any hi bound.
        b.compare(dat(key_off), sp(kFkHi))
            .jump_gt("finish")
            .compare(dat(key_off), sp(kFkLo))
            .jump_lt(lbl("fskip", i))
            .add(sp(kFkSum), sp(kFkSum), dat(val_off))
            .add(sp(kFkCount), sp(kFkCount), imm(1))
            .label(lbl("fskip", i));
    }
    b.compare(dat(kLeafNextOff), imm(0))
        .jump_eq("finish")
        .move(cur(), dat(kLeafNextOff))
        .next_iter();
    // JOIN with no outstanding branches completes immediately (the
    // terminal of fork leaves; RETURN is illegal in forking programs).
    b.label("finish").move(sp(kFkFlag), imm(1)).join();

    b.scratch_bytes(kFkBytes);
    b.max_spawn_depth(1);
    agg_forked_program_ =
        std::make_shared<const isa::Program>(b.build());
    return agg_forked_program_;
}

// ---------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------

std::uint64_t
BPTree::agg_init(AggKind kind)
{
    switch (kind) {
      case AggKind::kMin:
        return 0x7FFFFFFFFFFFFFFFull;  // INT64_MAX
      case AggKind::kMax:
        return 0x8000000000000000ull;  // INT64_MIN
      default:
        return 0;
    }
}

offload::Operation
BPTree::make_find(std::uint64_t key, offload::CompletionFn done) const
{
    offload::Operation op;
    op.program = find_program();
    op.start_ptr = root_;
    op.init_scratch.assign(kSpBytes, 0);
    std::memcpy(op.init_scratch.data() + kSpKey, &key, 8);
    op.init_cpu_time = nanos(30.0);
    op.done = std::move(done);
    return op;
}

offload::Operation
BPTree::make_scan(std::uint64_t start_key, std::uint64_t count,
                  offload::CompletionFn done) const
{
    PULSE_ASSERT(count >= 1, "scan of zero entries");
    offload::Operation op;
    op.program = scan_fold_program();
    op.start_ptr = root_;
    op.init_scratch.assign(
        kSpStage + config_.leaf_slots * kLeafSlotBytes, 0);
    std::memcpy(op.init_scratch.data() + kSpKey, &start_key, 8);
    std::memcpy(op.init_scratch.data() + kSpRemaining, &count, 8);
    op.init_cpu_time = nanos(35.0);
    op.done = std::move(done);
    return op;
}

offload::Operation
BPTree::make_aggregate(AggKind kind, std::uint64_t lo, std::uint64_t hi,
                       offload::CompletionFn done) const
{
    PULSE_ASSERT(lo <= hi, "empty window");
    offload::Operation op;
    op.program = aggregate_program(kind);
    op.start_ptr = root_;
    op.init_scratch.assign(kSpBytes, 0);
    std::memcpy(op.init_scratch.data() + kSpKey, &lo, 8);
    std::memcpy(op.init_scratch.data() + kSpKey2, &hi, 8);
    const std::uint64_t init = agg_init(kind);
    std::memcpy(op.init_scratch.data() + kSpResult, &init, 8);
    op.init_cpu_time = nanos(35.0);
    op.done = std::move(done);
    return op;
}

offload::Operation
BPTree::make_aggregate_forked(std::uint64_t lo, std::uint64_t hi,
                              offload::CompletionFn done) const
{
    PULSE_ASSERT(lo <= hi, "empty window");
    offload::Operation op;
    op.program = aggregate_forked_program();
    op.start_ptr = root_;
    op.init_scratch.assign(kFkBytes, 0);
    std::memcpy(op.init_scratch.data() + kFkLo, &lo, 8);
    std::memcpy(op.init_scratch.data() + kFkHi, &hi, 8);
    op.init_cpu_time = nanos(35.0);
    op.done = std::move(done);
    return op;
}

// ---------------------------------------------------------------------
// Completion parsing
// ---------------------------------------------------------------------

namespace {

std::uint64_t
scratch_word(const offload::Completion& completion, std::uint32_t off)
{
    if (completion.scratch.size() < off + 8) {
        return 0;
    }
    std::uint64_t word = 0;
    std::memcpy(&word, completion.scratch.data() + off, 8);
    return word;
}

}  // namespace

BPTree::FindResult
BPTree::parse_find(const offload::Completion& completion)
{
    FindResult result;
    if (completion.status != isa::TraversalStatus::kDone) {
        return result;
    }
    if (scratch_word(completion, kSpFlag) != 1) {
        return result;
    }
    result.found = true;
    result.payload = scratch_word(completion, kSpResult);
    return result;
}

BPTree::ScanResult
BPTree::parse_scan(const offload::Completion& completion)
{
    ScanResult result;
    if (completion.status != isa::TraversalStatus::kDone) {
        return result;
    }
    result.complete = scratch_word(completion, kSpFlag) == 1;
    result.count = scratch_word(completion, kSpCount);
    result.fold = scratch_word(completion, kSpResult);
    result.last_key = scratch_word(completion, kSpLastKey);
    return result;
}

BPTree::AggResult
BPTree::parse_aggregate(const offload::Completion& completion,
                        AggKind kind)
{
    AggResult result;
    if (completion.status != isa::TraversalStatus::kDone) {
        return result;
    }
    result.complete = scratch_word(completion, kSpFlag) == 1;
    result.count = scratch_word(completion, kSpCount);
    result.value = static_cast<std::int64_t>(
        kind == AggKind::kCount ? result.count
                                : scratch_word(completion, kSpResult));
    return result;
}

BPTree::AggResult
BPTree::parse_aggregate_forked(const offload::Completion& completion)
{
    AggResult result;
    if (completion.status != isa::TraversalStatus::kDone) {
        return result;
    }
    result.complete = scratch_word(completion, kFkFlag) == 1;
    result.count = scratch_word(completion, kFkCount);
    result.value =
        static_cast<std::int64_t>(scratch_word(completion, kFkSum));
    return result;
}

// ---------------------------------------------------------------------
// Host-side references
// ---------------------------------------------------------------------

VirtAddr
BPTree::descend_reference(std::uint64_t key) const
{
    VirtAddr node = root_;
    for (;;) {
        const std::uint64_t meta = memory_.read_as<std::uint64_t>(node);
        if (meta & 1) {
            return node;
        }
        const auto count = static_cast<std::uint32_t>(meta >> 8);
        std::uint32_t child = count;
        for (std::uint32_t i = 0; i < count; i++) {
            const std::uint64_t sep = memory_.read_as<std::uint64_t>(
                node + kInnerKeysOff + i * 8);
            if (key <= sep) {
                child = i;
                break;
            }
        }
        node = memory_.read_as<std::uint64_t>(node + kInnerChildrenOff +
                                              child * 8);
    }
}

std::optional<std::uint64_t>
BPTree::find_reference(std::uint64_t key) const
{
    const VirtAddr leaf = descend_reference(key);
    const std::uint64_t meta = memory_.read_as<std::uint64_t>(leaf);
    const auto count = static_cast<std::uint32_t>(meta >> 8);
    for (std::uint32_t s = 0; s < count; s++) {
        const VirtAddr off = leaf + kLeafSlotsOff + s * kLeafSlotBytes;
        if (memory_.read_as<std::uint64_t>(off) == key) {
            return memory_.read_as<std::uint64_t>(off + 8);
        }
    }
    return std::nullopt;
}

BPTree::ScanResult
BPTree::scan_reference(std::uint64_t start_key,
                       std::uint64_t count) const
{
    PULSE_ASSERT(!config_.inline_values,
                 "scan expects out-of-line value objects");
    ScanResult result;
    result.complete = true;
    VirtAddr leaf = descend_reference(start_key);
    while (leaf != kNullAddr && result.count < count) {
        const std::uint64_t meta = memory_.read_as<std::uint64_t>(leaf);
        const auto used = static_cast<std::uint32_t>(meta >> 8);
        for (std::uint32_t s = 0; s < used && result.count < count;
             s++) {
            const VirtAddr off =
                leaf + kLeafSlotsOff + s * kLeafSlotBytes;
            const std::uint64_t key =
                memory_.read_as<std::uint64_t>(off);
            if (key < start_key) {
                continue;
            }
            const VirtAddr value =
                memory_.read_as<std::uint64_t>(off + 8);
            result.fold += memory_.read_as<std::uint64_t>(value);
            result.count++;
            result.last_key = key;
        }
        leaf = memory_.read_as<std::uint64_t>(leaf + kLeafNextOff);
    }
    return result;
}

BPTree::AggResult
BPTree::aggregate_reference(AggKind kind, std::uint64_t lo,
                            std::uint64_t hi) const
{
    PULSE_ASSERT(config_.inline_values, "aggregate expects inline");
    AggResult result;
    result.complete = true;
    std::uint64_t acc = agg_init(kind);
    VirtAddr leaf = descend_reference(lo);
    bool done = false;
    while (leaf != kNullAddr && !done) {
        const std::uint64_t meta = memory_.read_as<std::uint64_t>(leaf);
        const auto used = static_cast<std::uint32_t>(meta >> 8);
        for (std::uint32_t s = 0; s < used; s++) {
            const VirtAddr off =
                leaf + kLeafSlotsOff + s * kLeafSlotBytes;
            const std::uint64_t key =
                memory_.read_as<std::uint64_t>(off);
            if (key > hi) {
                done = true;
                break;
            }
            if (key < lo) {
                continue;
            }
            const std::uint64_t value =
                memory_.read_as<std::uint64_t>(off + 8);
            switch (kind) {
              case AggKind::kSum:
                acc += value;
                result.count++;
                break;
              case AggKind::kCount:
                result.count++;
                break;
              case AggKind::kMin:
                if (static_cast<std::int64_t>(value) <
                    static_cast<std::int64_t>(acc)) {
                    acc = value;
                }
                result.count++;
                break;
              case AggKind::kMax:
                if (static_cast<std::int64_t>(value) >
                    static_cast<std::int64_t>(acc)) {
                    acc = value;
                }
                result.count++;
                break;
            }
        }
        leaf = memory_.read_as<std::uint64_t>(leaf + kLeafNextOff);
    }
    result.value = static_cast<std::int64_t>(
        kind == AggKind::kCount ? result.count : acc);
    return result;
}

}  // namespace pulse::ds
