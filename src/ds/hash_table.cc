#include "ds/hash_table.h"

#include <cstring>

#include "common/logging.h"

namespace pulse::ds {

HashTable::HashTable(mem::GlobalMemory& memory,
                     mem::ClusterAllocator& alloc,
                     const HashTableConfig& config)
    : memory_(memory), alloc_(alloc), config_(config)
{
    PULSE_ASSERT(config.num_buckets > 0, "hash table needs buckets");
    PULSE_ASSERT(config.partitions > 0, "partitions must be >= 1");
    PULSE_ASSERT(config.value_bytes >= 8 && config.value_bytes <= 240,
                 "value bytes out of range");
    PULSE_ASSERT(config.partitions <= memory.num_nodes(),
                 "more partitions than memory nodes");

    buckets_per_partition_ =
        (config.num_buckets + config.partitions - 1) / config.partitions;
    partition_base_.resize(config.partitions);
    for (std::uint32_t p = 0; p < config.partitions; p++) {
        // Pad each sub-array so the 256 B phase-0 LOAD at the last
        // bucket slot never runs past the allocation.
        const Bytes bytes = buckets_per_partition_ * 8 + 256;
        partition_base_[p] = alloc_.alloc_on(p, bytes, 256);
        PULSE_ASSERT(partition_base_[p] != kNullAddr,
                     "out of memory for bucket array");
    }
}

std::uint64_t
HashTable::bucket_of(std::uint64_t key) const
{
    if (config_.sequential_buckets) {
        return (key >> 3) % config_.num_buckets;
    }
    return mix64(key) % config_.num_buckets;
}

VirtAddr
HashTable::bucket_slot(std::uint64_t key) const
{
    const std::uint64_t bucket = bucket_of(key);
    const std::uint64_t partition = bucket / buckets_per_partition_;
    const std::uint64_t within = bucket % buckets_per_partition_;
    return partition_base_[partition] + within * 8;
}

NodeId
HashTable::node_of(std::uint64_t key) const
{
    return static_cast<NodeId>(bucket_of(key) / buckets_per_partition_);
}

void
HashTable::insert(std::uint64_t key)
{
    const VirtAddr slot = bucket_slot(key);
    // Chain nodes co-locate with their bucket (key partitioning).
    const VirtAddr node =
        alloc_.alloc_on(node_of(key), node_bytes(), 256);
    PULSE_ASSERT(node != kNullAddr, "out of memory for chain node");

    const VirtAddr head = memory_.read_as<std::uint64_t>(slot);
    std::vector<std::uint8_t> buffer(node_bytes(), 0);
    std::memcpy(buffer.data() + kKeyOff, &key, 8);
    std::memcpy(buffer.data() + kNextOff, &head, 8);
    fill_value_pattern(key, buffer.data() + kValueOff,
                       config_.value_bytes);
    memory_.write(node, buffer.data(), buffer.size());
    memory_.write_as<std::uint64_t>(slot, node);
    size_++;
}

void
HashTable::insert_many(const std::vector<std::uint64_t>& keys)
{
    for (const std::uint64_t key : keys) {
        insert(key);
    }
}

std::shared_ptr<const isa::Program>
HashTable::find_program() const
{
    if (find_program_) {
        return find_program_;
    }
    const auto value_width =
        static_cast<std::uint16_t>(config_.value_bytes);
    isa::ProgramBuilder b;
    b.load(256)
        // Phase dispatch: 0 = bucket slot, 1 = chain node.
        .compare(isa::sp(kSpPhase), isa::imm(1))
        .jump_eq("chain")
        // Phase 0: the loaded data starts with the bucket head pointer.
        .compare(isa::dat(0), isa::imm(0))
        .jump_eq("notfound")
        .move(isa::cur(), isa::dat(0))
        .move(isa::sp(kSpPhase), isa::imm(1))
        .next_iter()
        // Phase 1: Listing 4's chain logic.
        .label("chain")
        .compare(isa::sp(kSpKey), isa::dat(kKeyOff))
        .jump_eq("found")
        .compare(isa::imm(0), isa::dat(kNextOff))
        .jump_eq("notfound")
        .move(isa::cur(), isa::dat(kNextOff))
        .next_iter()
        .label("notfound")
        .move(isa::sp(kSpFlag), isa::imm(kKeyNotFound))
        .ret()
        .label("found")
        .move(isa::sp(kSpFlag), isa::imm(1))
        // Register-vector move: the whole value in one instruction.
        .move(isa::sp(kSpValue, value_width),
              isa::dat(kValueOff, value_width))
        .ret();
    b.scratch_bytes(kSpPhase + 8);
    find_program_ = std::make_shared<const isa::Program>(b.build());
    return find_program_;
}

std::shared_ptr<const isa::Program>
HashTable::update_program() const
{
    if (update_program_) {
        return update_program_;
    }
    const auto value_width =
        static_cast<std::uint16_t>(config_.value_bytes);
    isa::ProgramBuilder b;
    b.load(256)
        .compare(isa::sp(kSpPhase), isa::imm(1))
        .jump_eq("chain")
        .compare(isa::dat(0), isa::imm(0))
        .jump_eq("notfound")
        .move(isa::cur(), isa::dat(0))
        .move(isa::sp(kSpPhase), isa::imm(1))
        .next_iter()
        .label("chain")
        .compare(isa::sp(kSpKey), isa::dat(kKeyOff))
        .jump_eq("found")
        .compare(isa::imm(0), isa::dat(kNextOff))
        .jump_eq("notfound")
        .move(isa::cur(), isa::dat(kNextOff))
        .next_iter()
        .label("notfound")
        .move(isa::sp(kSpFlag), isa::imm(kKeyNotFound))
        .ret()
        .label("found")
        // Stage the new value into the data registers, then write it
        // back over the node's value field.
        .move(isa::dat(kValueOff, value_width),
              isa::sp(kSpValue, value_width))
        .store(kValueOff, kValueOff, value_width)
        .move(isa::sp(kSpFlag), isa::imm(1))
        .ret();
    b.scratch_bytes(kSpPhase + 8);
    update_program_ = std::make_shared<const isa::Program>(b.build());
    return update_program_;
}

offload::Operation
HashTable::make_update(std::uint64_t key,
                       const std::vector<std::uint8_t>& value,
                       offload::CompletionFn done) const
{
    PULSE_ASSERT(value.size() == config_.value_bytes,
                 "value size mismatch");
    offload::Operation op;
    op.program = update_program();
    op.start_ptr = bucket_slot(key);
    op.init_scratch.assign(kSpPhase + 8, 0);
    std::memcpy(op.init_scratch.data() + kSpKey, &key, 8);
    std::memcpy(op.init_scratch.data() + kSpValue, value.data(),
                value.size());
    op.init_cpu_time = nanos(50.0);
    op.done = std::move(done);
    return op;
}

bool
HashTable::parse_update(const offload::Completion& completion)
{
    if (completion.status != isa::TraversalStatus::kDone ||
        completion.scratch.size() < kSpFlag + 8) {
        return false;
    }
    std::uint64_t flag = 0;
    std::memcpy(&flag, completion.scratch.data() + kSpFlag, 8);
    return flag == 1;
}

offload::Operation
HashTable::make_find(std::uint64_t key, offload::CompletionFn done) const
{
    offload::Operation op;
    op.program = find_program();
    op.start_ptr = bucket_slot(key);
    op.init_scratch.assign(kSpPhase + 8, 0);
    std::memcpy(op.init_scratch.data() + kSpKey, &key, 8);
    // init(): hash the key and stage the scratch_pad.
    op.init_cpu_time = nanos(40.0);
    op.done = std::move(done);
    return op;
}

HashTable::FindResult
HashTable::parse_find(const offload::Completion& completion) const
{
    FindResult result;
    if (completion.status != isa::TraversalStatus::kDone ||
        completion.scratch.size() < kSpValue + config_.value_bytes) {
        return result;
    }
    std::uint64_t flag = 0;
    std::memcpy(&flag, completion.scratch.data() + kSpFlag, 8);
    if (flag != 1) {
        return result;
    }
    result.found = true;
    result.value.assign(
        completion.scratch.begin() + kSpValue,
        completion.scratch.begin() + kSpValue + config_.value_bytes);
    std::memcpy(&result.value_word, result.value.data(), 8);
    return result;
}

std::optional<std::uint64_t>
HashTable::find_reference(std::uint64_t key) const
{
    VirtAddr node = memory_.read_as<std::uint64_t>(bucket_slot(key));
    while (node != kNullAddr) {
        if (memory_.read_as<std::uint64_t>(node + kKeyOff) == key) {
            return memory_.read_as<std::uint64_t>(node + kValueOff);
        }
        node = memory_.read_as<std::uint64_t>(node + kNextOff);
    }
    return std::nullopt;
}

std::uint64_t
HashTable::chain_length(std::uint64_t bucket) const
{
    PULSE_ASSERT(bucket < config_.num_buckets, "bad bucket");
    const std::uint64_t partition = bucket / buckets_per_partition_;
    const std::uint64_t within = bucket % buckets_per_partition_;
    VirtAddr node = memory_.read_as<std::uint64_t>(
        partition_base_[partition] + within * 8);
    std::uint64_t length = 0;
    while (node != kNullAddr) {
        length++;
        node = memory_.read_as<std::uint64_t>(node + kNextOff);
    }
    return length;
}

}  // namespace pulse::ds
