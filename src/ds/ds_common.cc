#include "ds/ds_common.h"

#include <cstring>

namespace pulse::ds {

std::uint64_t
mix64(std::uint64_t key)
{
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
value_pattern_word(std::uint64_t key)
{
    return mix64(key ^ 0xC0FFEE);
}

void
fill_value_pattern(std::uint64_t key, std::uint8_t* out, Bytes len)
{
    std::uint64_t word = value_pattern_word(key);
    while (len >= 8) {
        std::memcpy(out, &word, 8);
        out += 8;
        len -= 8;
        word = mix64(word);
    }
    if (len > 0) {
        std::memcpy(out, &word, len);
    }
}

}  // namespace pulse::ds
