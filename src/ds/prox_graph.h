/**
 * @file
 * Proximity graph with greedy nearest-neighbour search — the "graph
 * traversals in graph processing workloads" class the paper's section
 * 2.1 motivates, expressed in the pulse iterator model.
 *
 * The structure is a 1-D small-world graph (HNSW-flavoured): every
 * vertex stores its key and up to kNeighbors (key, pointer) links to
 * vertices at exponentially growing key distances. Greedy search hops
 * to whichever neighbour is closest to the target key and stops at a
 * local minimum — each hop strictly decreases the distance, so the
 * traversal is cycle-free and converges in O(log n) hops.
 *
 * Vertex layout (144 B, fits the 256 B aggregated load):
 *   key       u64 @ 0
 *   num_nbrs  u64 @ 8
 *   links[8] @ 16: { nbr_key u64, nbr_ptr u64 }
 * Unused link slots are padded with kPadKey so the unrolled scan never
 * selects them (their distance is astronomically large).
 */
#ifndef PULSE_DS_PROX_GRAPH_H
#define PULSE_DS_PROX_GRAPH_H

#include <memory>
#include <vector>

#include "ds/ds_common.h"
#include "isa/program.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"

namespace pulse::ds {

/** Small-world proximity graph over disaggregated memory. */
class ProxGraph
{
  public:
    static constexpr std::uint32_t kNeighbors = 8;
    static constexpr Bytes kNodeBytes = 16 + kNeighbors * 16;

    /** Vertex field offsets. */
    static constexpr std::uint32_t kKeyOff = 0;
    static constexpr std::uint32_t kNumOff = 8;
    static constexpr std::uint32_t kLinksOff = 16;

    /** Scratch layout for greedy search. */
    static constexpr std::uint32_t kSpTarget = 0;
    static constexpr std::uint32_t kSpBestDist = 8;
    static constexpr std::uint32_t kSpBestPtr = 16;
    static constexpr std::uint32_t kSpCurDist = 24;
    static constexpr std::uint32_t kSpFoundKey = 32;
    static constexpr std::uint32_t kSpFoundPtr = 40;
    static constexpr std::uint32_t kSpTmp = 48;
    static constexpr std::uint32_t kSpBytes = 56;

    /**
     * Scratch layout for the fork/join k-hop neighbourhood expansion.
     * The spawn-argument window is just the hops-remaining word; the
     * reduce lanes count the vertices reached (with multiplicity —
     * neighbour lists overlap) and sum their keys. Every link slot is
     * SPAWNed unconditionally: padded slots carry a null pointer, and
     * a null-pointer SPAWN is a no-op (the conditional-fork idiom).
     */
    static constexpr std::uint32_t kNhHops = 0;      ///< arg
    static constexpr std::uint32_t kNhArgBytes = 8;
    static constexpr std::uint32_t kNhCount = 8;     ///< reduce lane 0
    static constexpr std::uint32_t kNhKeySum = 16;   ///< reduce lane 1
    static constexpr std::uint32_t kNhFlag = 24;
    static constexpr std::uint32_t kNhBytes = 32;

    ProxGraph(mem::GlobalMemory& memory, mem::ClusterAllocator& alloc);

    /**
     * Build from strictly-increasing keys: vertex i links to vertices
     * i±1, i±2, i±4, i±8 (clamped), the classic 1-D small world.
     * Placement follows the allocator's policy; @p node pins it.
     */
    void build(const std::vector<std::uint64_t>& sorted_keys,
               NodeId node = kInvalidNode);

    /** Entry vertex for searches (the middle vertex). */
    VirtAddr entry() const { return entry_; }
    std::uint64_t size() const { return size_; }

    /** The greedy-descent program. */
    std::shared_ptr<const isa::Program> greedy_program() const;

    /** Operation: greedy nearest-neighbour search for @p target. */
    offload::Operation make_search(std::uint64_t target,
                                   offload::CompletionFn done) const;

    struct SearchResult
    {
        bool complete = false;
        std::uint64_t key = 0;       ///< key of the local minimum
        VirtAddr vertex = kNullAddr;
        std::uint64_t distance = 0;  ///< |key - target|
    };

    static SearchResult parse_search(
        const offload::Completion& completion);

    /** Host-side reference greedy search from the entry vertex. */
    SearchResult search_reference(std::uint64_t target) const;

    /**
     * The fork/join neighbourhood program: visit the current vertex,
     * fold (1, key) into the reduce lanes, and — while hops remain —
     * SPAWN one sub-traversal per link at hops-1. @p max_hops bounds
     * the program's fork depth.
     */
    std::shared_ptr<const isa::Program> nhood_program(
        std::uint32_t max_hops) const;

    /** Operation: expand the @p hops-hop neighbourhood of @p start. */
    offload::Operation make_nhood(VirtAddr start, std::uint32_t hops,
                                  offload::CompletionFn done) const;

    struct NhoodResult
    {
        bool complete = false;
        std::uint64_t vertices = 0;  ///< reached, with multiplicity
        std::uint64_t key_sum = 0;
    };

    static NhoodResult parse_nhood(
        const offload::Completion& completion);

    /** Host-side reference expansion (same multiplicity semantics). */
    NhoodResult nhood_reference(VirtAddr start,
                                std::uint32_t hops) const;

  private:
    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& alloc_;
    VirtAddr entry_ = kNullAddr;
    std::uint64_t size_ = 0;
    mutable std::shared_ptr<const isa::Program> program_;
    mutable std::shared_ptr<const isa::Program> nhood_programs_[4];
};

}  // namespace pulse::ds

#endif  // PULSE_DS_PROX_GRAPH_H
