/**
 * @file
 * Chained hash table in disaggregated memory (the paper's UPC workload;
 * covers the hash-category adapters of supplementary Table 3: Boost
 * bimap / unordered_map / unordered_set, Listings 3-4, and the main
 * text's unordered_map::find example, Listings 2-4 of section 3/4).
 *
 * Layout:
 *   - bucket array: one u64 head pointer per bucket, partitioned across
 *     memory nodes by contiguous bucket ranges (the paper partitions
 *     UPC's table by key, which is why UPC never crosses nodes —
 *     Table 2's "partitionable" column);
 *   - chain nodes (256 B): key u64 @0 | next u64 @8 | value @16
 *     (kValueBytes = 240 B, the paper's value size).
 *
 * find() is the two-phase traversal of section 4.3: iteration 0 loads
 * the bucket slot to pick up the chain head; subsequent iterations run
 * Listing 4's compare/advance logic. The paper forces a high load
 * factor to lengthen chains (~100 nodes visited per lookup); the
 * default config mirrors that.
 */
#ifndef PULSE_DS_HASH_TABLE_H
#define PULSE_DS_HASH_TABLE_H

#include <memory>
#include <optional>
#include <vector>

#include "ds/ds_common.h"
#include "isa/program.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"

namespace pulse::ds {

/** Hash-table shape parameters. */
struct HashTableConfig
{
    std::uint64_t num_buckets = 1024;

    /** Value bytes stored inline in each chain node. */
    Bytes value_bytes = 240;

    /**
     * Partition buckets (and their chains) across this many memory
     * nodes by contiguous bucket range; 1 keeps everything on node 0.
     */
    std::uint32_t partitions = 1;

    /**
     * Bucket by sequential key index ((key >> 3) % num_buckets, the
     * inverse of workloads::key_of) instead of mix64. Adjacent keys
     * then share nearby buckets, so a skewed generator concentrates
     * load on a contiguous bucket range of one partition — the setup
     * the elastic-placement ablation migrates out of. Default off:
     * mix64 keeps the paper's uniform bucket occupancy.
     */
    bool sequential_buckets = false;
};

/** The remote chained hash table. */
class HashTable
{
  public:
    /** Chain-node field offsets. */
    static constexpr std::uint32_t kKeyOff = 0;
    static constexpr std::uint32_t kNextOff = 8;
    static constexpr std::uint32_t kValueOff = 16;

    /** find() scratch layout. */
    static constexpr std::uint32_t kSpKey = 0;
    static constexpr std::uint32_t kSpFlag = 8;
    static constexpr std::uint32_t kSpValue = 16;
    /** Phase flag lives after the value (value_bytes <= 240). */
    static constexpr std::uint32_t kSpPhase = 256;

    HashTable(mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
              const HashTableConfig& config);

    /** Insert @p key with its deterministic pattern value. */
    void insert(std::uint64_t key);

    /** Bulk insert. */
    void insert_many(const std::vector<std::uint64_t>& keys);

    /** Number of stored keys. */
    std::uint64_t size() const { return size_; }

    /** Bucket index for @p key. */
    std::uint64_t bucket_of(std::uint64_t key) const;

    /** Virtual address of the bucket slot for @p key. */
    VirtAddr bucket_slot(std::uint64_t key) const;

    /** Memory node owning @p key's bucket (partitioned placement). */
    NodeId node_of(std::uint64_t key) const;

    /** The two-phase find program (bucket slot, then Listing 4). */
    std::shared_ptr<const isa::Program> find_program() const;

    /**
     * In-place update program: find the key, then STORE the new value
     * (staged in the scratch_pad) over the node's value field — the
     * write path of section 4.1's footnote, exercised end to end.
     */
    std::shared_ptr<const isa::Program> update_program() const;

    /** Operation for find(key): init() hashes and stages the key. */
    offload::Operation make_find(std::uint64_t key,
                                 offload::CompletionFn done) const;

    /** Operation for update(key, new_value). */
    offload::Operation make_update(std::uint64_t key,
                                   const std::vector<std::uint8_t>& value,
                                   offload::CompletionFn done) const;

    /** Parse an update completion: true if the key was found. */
    static bool parse_update(const offload::Completion& completion);

    /** Result of a parsed find completion. */
    struct FindResult
    {
        bool found = false;
        std::uint64_t value_word = 0;  ///< first 8 B of the value
        std::vector<std::uint8_t> value;
    };

    /** Parse a find completion. */
    FindResult parse_find(const offload::Completion& completion) const;

    /** Host-side reference find (plain remote reads, no ISA). */
    std::optional<std::uint64_t> find_reference(std::uint64_t key) const;

    /** Chain length of @p key's bucket (for load-factor stats). */
    std::uint64_t chain_length(std::uint64_t bucket) const;

    const HashTableConfig& config() const { return config_; }

    /** Bytes of one chain node. */
    Bytes node_bytes() const { return 16 + config_.value_bytes; }

  private:
    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& alloc_;
    HashTableConfig config_;
    std::uint64_t size_ = 0;
    std::uint64_t buckets_per_partition_ = 0;
    /** Base VA of each partition's bucket sub-array. */
    std::vector<VirtAddr> partition_base_;
    mutable std::shared_ptr<const isa::Program> find_program_;
    mutable std::shared_ptr<const isa::Program> update_program_;
};

}  // namespace pulse::ds

#endif  // PULSE_DS_HASH_TABLE_H
