/**
 * @file
 * B+Tree in disaggregated memory (the paper's TC and TSV workloads;
 * covers the Google-btree adapter of supplementary Table 3,
 * Listings 5-6).
 *
 * Node layouts (both fit the accelerator's 256 B aggregated load):
 *   inner (256 B): meta u64 @0 (count<<8 | is_leaf=0) |
 *                  keys[15] @8 | children[16] @128
 *   leaf  (<=256 B): meta u64 @0 (count<<8 | 1) | next_leaf u64 @8 |
 *                  slots @16, slot i = { key u64, payload u64 }
 *
 * Inner routing follows Google btree's internal_locate: child[i] for
 * the first i with key <= keys[i] (keys[i] = max key of child i's
 * subtree), else child[count]. The ISA programs unroll this with
 * forward jumps only. Unused leaf slots are padded with kPadKey
 * (INT64_MAX) so scans terminate on padding without per-slot count
 * checks — which is what keeps eta below 1 (section 4.2.2).
 *
 * Payloads are either inline 64-bit words (TSV readings) or pointers
 * to out-of-line 240 B value objects (TC conversations). Three offload
 * programs are provided:
 *   - find:      descend + exact leaf match (Listing 6's traversal);
 *   - scan-fold: TC's YCSB-E scan — descend, then alternate between
 *     leaf slot selection and value-object visits, folding each
 *     value's head word (count + sum fold returned; the ISA's static
 *     operand offsets preclude materializing N records in scratch, so
 *     the scan returns a verifiable fold — see DESIGN.md);
 *   - aggregate: TSV's windowed SUM/COUNT/MIN/MAX over inline values.
 */
#ifndef PULSE_DS_BPTREE_H
#define PULSE_DS_BPTREE_H

#include <memory>
#include <optional>
#include <vector>

#include "common/random.h"
#include "ds/ds_common.h"
#include "isa/program.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"

namespace pulse::ds {

/** Windowed-aggregation kinds (TSV picks one per request). */
enum class AggKind : std::uint8_t { kSum, kCount, kMin, kMax };

/** B+Tree shape parameters. */
struct BPTreeConfig
{
    /** Leaf slots per node (also the scan/aggregate unroll factor). */
    std::uint32_t leaf_slots = 12;

    /** Leaf entries used during bulk build (<= leaf_slots). */
    std::uint32_t leaf_fill = 12;

    /** Children used per inner node during bulk build (<= 16). */
    std::uint32_t inner_fill = 14;

    /** Inline u64 payloads (TSV) vs out-of-line value objects (TC). */
    bool inline_values = true;

    /** Value-object size when !inline_values. */
    Bytes value_bytes = 240;

    /**
     * Partition leaves (and their subtrees/values) across this many
     * memory nodes by contiguous key range (supp. Fig. 2's partitioned
     * policy); when false the allocator's own policy places every node
     * (glibc-like uniform when the allocator is kUniform).
     */
    bool partitioned = true;
    std::uint32_t partitions = 1;

    /**
     * Allocate value objects in shuffled key order instead of scan
     * order, modelling a store whose records were inserted and updated
     * over time (the paper's YCSB-E store): adjacent keys' values then
     * share neither pages (cache locality) nor, under uniform
     * placement, memory nodes.
     */
    bool scatter_values = false;

    /**
     * Allocator-fragmentation model for incrementally-built trees:
     * after each leaf allocation, skip a uniform-random gap in
     * [0, leaf_alloc_gap_max] bytes. Zero (bulk build) packs leaves
     * contiguously, giving the cache-based baseline near-perfect page
     * locality on leaf chains; the TSV benches use a non-zero gap to
     * model a long-lived tree built by chronological insertion and
     * splits (see DESIGN.md).
     */
    Bytes leaf_alloc_gap_max = 0;
};

/** One (key, payload) pair for bulk building. */
struct BPTreeEntry
{
    std::uint64_t key = 0;
    std::uint64_t payload = 0;  ///< inline value; ignored for TC trees
};

/** The remote B+Tree. */
class BPTree
{
  public:
    /** Inner-node layout. */
    static constexpr std::uint32_t kMetaOff = 0;
    static constexpr std::uint32_t kInnerKeysOff = 8;
    static constexpr std::uint32_t kInnerChildrenOff = 128;
    static constexpr std::uint32_t kInnerMaxKeys = 15;

    /** Leaf layout. */
    static constexpr std::uint32_t kLeafNextOff = 8;
    static constexpr std::uint32_t kLeafSlotsOff = 16;
    static constexpr std::uint32_t kLeafSlotBytes = 16;

    /** Scratch layout shared by all three programs. */
    static constexpr std::uint32_t kSpKey = 0;    ///< search key / t_lo
    static constexpr std::uint32_t kSpKey2 = 8;   ///< t_hi (aggregate)
    static constexpr std::uint32_t kSpResult = 16;  ///< payload / acc
    static constexpr std::uint32_t kSpFlag = 24;  ///< found / done
    static constexpr std::uint32_t kSpCount = 32; ///< entries touched
    static constexpr std::uint32_t kSpPhase = 40;
    static constexpr std::uint32_t kSpTmp = 48;
    static constexpr std::uint32_t kSpCnt = 56;   ///< node key count
    static constexpr std::uint32_t kSpLeafPtr = 72;
    static constexpr std::uint32_t kSpRemaining = 80;
    static constexpr std::uint32_t kSpLastKey = 88;
    /** Scan staging area: next-leaf pointer + a copy of the leaf slots
     *  (one register-vector move), consumed by per-slot value phases. */
    static constexpr std::uint32_t kSpNextStage = 96;
    static constexpr std::uint32_t kSpStage = 104;
    /** Scratch bytes for find/aggregate; scans add the staging area. */
    static constexpr std::uint32_t kSpBytes = 96;

    /**
     * Scratch layout of the fork/join aggregation (SUM only). The
     * spawn-argument window [0, 24) rides at the same offsets in the
     * child: the narrowed key window plus the fork depth. The reduce
     * lanes are the sum and the in-window count, both folded with ADD.
     */
    static constexpr std::uint32_t kFkLo = 0;       ///< arg: window lo
    static constexpr std::uint32_t kFkHi = 8;       ///< arg: window hi
    static constexpr std::uint32_t kFkDepth = 16;   ///< arg: fork depth
    static constexpr std::uint32_t kFkArgBytes = 24;
    static constexpr std::uint32_t kFkSum = 24;     ///< reduce lane 0
    static constexpr std::uint32_t kFkCount = 32;   ///< reduce lane 1
    static constexpr std::uint32_t kFkFlag = 40;    ///< done flag
    static constexpr std::uint32_t kFkChildLo = 64;
    static constexpr std::uint32_t kFkChildHi = 72;
    static constexpr std::uint32_t kFkTmp = 80;
    static constexpr std::uint32_t kFkPhase = 88;
    /** Staging children's windows into [0, 24) clobbers the root's own
     *  window, so it is saved here before the spawn loop. */
    static constexpr std::uint32_t kFkOwnLo = 96;
    static constexpr std::uint32_t kFkOwnHi = 104;
    static constexpr std::uint32_t kFkBytes = 112;

    BPTree(mem::GlobalMemory& memory, mem::ClusterAllocator& alloc,
           const BPTreeConfig& config);

    /** Bulk build from strictly-increasing keys. */
    void build(const std::vector<BPTreeEntry>& sorted_entries);

    VirtAddr root() const { return root_; }
    VirtAddr first_leaf() const { return first_leaf_; }
    std::uint64_t size() const { return size_; }
    std::uint32_t depth() const { return depth_; }
    std::uint64_t num_leaves() const { return num_leaves_; }
    const BPTreeConfig& config() const { return config_; }

    /** Programs (cached; generated from the config's unroll factors). */
    std::shared_ptr<const isa::Program> find_program() const;
    std::shared_ptr<const isa::Program> scan_fold_program() const;
    std::shared_ptr<const isa::Program> aggregate_program(
        AggKind kind) const;

    /**
     * Fork/join windowed SUM: the root visit SPAWNs one sub-traversal
     * per *pair* of child subtrees overlapping [lo, hi] — each with
     * the window narrowed at the separator keys, so the chunks are
     * disjoint and no entry is counted twice — and JOINs; children
     * run the sequential descend+scan on their narrowed window, the
     * leaf sibling chain carrying the scan across the pair boundary.
     * Pairing keeps even a full 16-child root within the per-visit
     * spawn budget. One fork level (max_spawn_depth = 1).
     */
    std::shared_ptr<const isa::Program> aggregate_forked_program() const;

    /** Operation: exact-match find. */
    offload::Operation make_find(std::uint64_t key,
                                 offload::CompletionFn done) const;

    /** Operation: scan @p count entries starting at @p start_key. */
    offload::Operation make_scan(std::uint64_t start_key,
                                 std::uint64_t count,
                                 offload::CompletionFn done) const;

    /** Operation: aggregate payloads with keys in [lo, hi]. */
    offload::Operation make_aggregate(AggKind kind, std::uint64_t lo,
                                      std::uint64_t hi,
                                      offload::CompletionFn done) const;

    /** Operation: fork/join SUM over [lo, hi] (one fork per pair of
     *  root subtrees). */
    offload::Operation make_aggregate_forked(
        std::uint64_t lo, std::uint64_t hi,
        offload::CompletionFn done) const;

    /** Parsed results. */
    struct FindResult
    {
        bool found = false;
        std::uint64_t payload = 0;
    };
    struct ScanResult
    {
        bool complete = false;       ///< done-flag observed
        std::uint64_t count = 0;     ///< entries visited
        std::uint64_t fold = 0;      ///< sum of value head words
        std::uint64_t last_key = 0;  ///< last key consumed
    };
    struct AggResult
    {
        bool complete = false;
        std::uint64_t count = 0;    ///< in-window entries
        std::int64_t value = 0;     ///< sum / count / min / max
    };

    static FindResult parse_find(const offload::Completion& completion);
    static ScanResult parse_scan(const offload::Completion& completion);
    static AggResult parse_aggregate(
        const offload::Completion& completion, AggKind kind);

    /** Parse a fork/join SUM completion (compare with
     *  aggregate_reference(AggKind::kSum, ...)). */
    static AggResult parse_aggregate_forked(
        const offload::Completion& completion);

    /** Host-side references (plain remote reads, no ISA). */
    std::optional<std::uint64_t> find_reference(std::uint64_t key) const;
    ScanResult scan_reference(std::uint64_t start_key,
                              std::uint64_t count) const;
    AggResult aggregate_reference(AggKind kind, std::uint64_t lo,
                                  std::uint64_t hi) const;

    /** Memory node a key's leaf lives on (partitioned placement). */
    NodeId node_of_key(std::uint64_t key) const;

  private:
    struct LevelNode
    {
        VirtAddr addr = kNullAddr;
        std::uint64_t max_key = 0;
        NodeId placed_on = 0;
    };

    /** Allocate one 256 B tree node per the placement policy. */
    VirtAddr alloc_node(NodeId preferred, NodeId* placed);

    /** Initial accumulator for @p kind. */
    static std::uint64_t agg_init(AggKind kind);

    /** Emit the shared descend section; falls through at @p on_leaf. */
    void emit_descend(isa::ProgramBuilder& b,
                      const std::string& leaf_label) const;

    /** Leaf address + loaded bytes for host-side descends. */
    VirtAddr descend_reference(std::uint64_t key) const;

    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& alloc_;
    BPTreeConfig config_;
    Rng gap_rng_{0xB17EE};
    VirtAddr root_ = kNullAddr;
    VirtAddr first_leaf_ = kNullAddr;
    std::uint64_t size_ = 0;
    std::uint32_t depth_ = 0;
    std::uint64_t num_leaves_ = 0;
    /** Per-leaf (max key, placement) index for node_of_key(). */
    std::vector<std::pair<std::uint64_t, NodeId>> leaf_index_;
    mutable std::shared_ptr<const isa::Program> find_program_;
    mutable std::shared_ptr<const isa::Program> scan_program_;
    mutable std::shared_ptr<const isa::Program> agg_programs_[4];
    mutable std::shared_ptr<const isa::Program> agg_forked_program_;
};

}  // namespace pulse::ds

#endif  // PULSE_DS_BPTREE_H
