#include "ds/linked_list.h"

#include <cstring>

#include "common/logging.h"

namespace pulse::ds {

LinkedList::LinkedList(mem::GlobalMemory& memory,
                       mem::ClusterAllocator& alloc, Bytes node_bytes)
    : memory_(memory), alloc_(alloc), node_bytes_(node_bytes)
{
    PULSE_ASSERT(node_bytes >= 16 && node_bytes <= 256,
                 "node size out of range");
}

void
LinkedList::build(const std::vector<std::uint64_t>& values, NodeId node)
{
    for (const std::uint64_t value : values) {
        const VirtAddr addr =
            node == kInvalidNode
                ? alloc_.alloc(node_bytes_, node_bytes_)
                : alloc_.alloc_on(node, node_bytes_, node_bytes_);
        PULSE_ASSERT(addr != kNullAddr, "out of disaggregated memory");
        std::uint8_t buffer[256] = {};
        std::memcpy(buffer, &value, 8);
        // next = 0 for now; patched when the successor is appended.
        fill_value_pattern(value, buffer + 16, node_bytes_ - 16);
        memory_.write(addr, buffer, node_bytes_);

        if (head_ == kNullAddr) {
            head_ = addr;
        } else {
            memory_.write_as<std::uint64_t>(tail_ + 8, addr);
        }
        tail_ = addr;
        size_++;
    }
}

std::shared_ptr<const isa::Program>
LinkedList::find_program() const
{
    if (find_program_) {
        return find_program_;
    }
    // Supp. Listing 2: end() checks value match or next == null;
    // next() follows the next pointer.
    isa::ProgramBuilder b;
    b.load(16)
        .compare(isa::sp(kSpValue), isa::dat(0))
        .jump_eq("found")
        .compare(isa::imm(0), isa::dat(8))
        .jump_eq("notfound")
        .move(isa::cur(), isa::dat(8))
        .next_iter()
        .label("notfound")
        .move(isa::sp(kSpResult), isa::imm(kKeyNotFound))
        .ret()
        .label("found")
        .move(isa::sp(kSpResult), isa::cur())
        .ret();
    find_program_ =
        std::make_shared<const isa::Program>(b.build());
    return find_program_;
}

std::shared_ptr<const isa::Program>
LinkedList::walk_program() const
{
    if (walk_program_) {
        return walk_program_;
    }
    isa::ProgramBuilder b;
    // The walk loads the whole node: it is the bandwidth stressor of
    // supp. Fig. 1b (find() coalesces just the 16 bytes it uses).
    b.load(static_cast<std::uint32_t>(node_bytes_))
        .move(isa::sp(kSpLast), isa::dat(0))
        .sub(isa::sp(kSpRemaining), isa::sp(kSpRemaining), isa::imm(1))
        .compare(isa::sp(kSpRemaining), isa::imm(0))
        .jump_eq("done")
        .compare(isa::imm(0), isa::dat(8))
        .jump_eq("done")
        .move(isa::cur(), isa::dat(8))
        .next_iter()
        .label("done")
        .ret();
    // Long walks are the point of this program; raise the per-request
    // iteration budget so single-visit latency scales linearly.
    b.max_iters(1u << 16);
    walk_program_ =
        std::make_shared<const isa::Program>(b.build());
    return walk_program_;
}

offload::Operation
LinkedList::make_find(std::uint64_t value,
                      offload::CompletionFn done) const
{
    offload::Operation op;
    op.program = find_program();
    op.start_ptr = head_;
    op.init_scratch.assign(16, 0);
    std::memcpy(op.init_scratch.data() + kSpValue, &value, 8);
    op.init_cpu_time = nanos(20.0);  // init(): stage the search value
    op.done = std::move(done);
    return op;
}

offload::Operation
LinkedList::make_walk(std::uint64_t hops, offload::CompletionFn done) const
{
    PULSE_ASSERT(hops > 0, "walk of zero hops");
    offload::Operation op;
    op.program = walk_program();
    op.start_ptr = head_;
    op.init_scratch.assign(16, 0);
    std::memcpy(op.init_scratch.data() + kSpRemaining, &hops, 8);
    op.init_cpu_time = nanos(20.0);
    op.done = std::move(done);
    return op;
}

std::optional<VirtAddr>
LinkedList::parse_find(const offload::Completion& completion)
{
    if (completion.status != isa::TraversalStatus::kDone ||
        completion.scratch.size() < kSpResult + 8) {
        return std::nullopt;
    }
    std::uint64_t result = 0;
    std::memcpy(&result, completion.scratch.data() + kSpResult, 8);
    if (result == kKeyNotFound) {
        return std::nullopt;
    }
    return result;
}

std::optional<VirtAddr>
LinkedList::find_reference(std::uint64_t value) const
{
    VirtAddr cur = head_;
    while (cur != kNullAddr) {
        if (memory_.read_as<std::uint64_t>(cur) == value) {
            return cur;
        }
        cur = memory_.read_as<std::uint64_t>(cur + 8);
    }
    return std::nullopt;
}

}  // namespace pulse::ds
