#include "ds/prox_graph.h"

#include <cstring>
#include <string>

#include "common/logging.h"

namespace pulse::ds {
namespace {

std::string
lbl(const char* stem, std::uint32_t i)
{
    return std::string(stem) + std::to_string(i);
}

std::uint64_t
abs_distance(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : b - a;
}

}  // namespace

ProxGraph::ProxGraph(mem::GlobalMemory& memory,
                     mem::ClusterAllocator& alloc)
    : memory_(memory), alloc_(alloc)
{
}

void
ProxGraph::build(const std::vector<std::uint64_t>& sorted_keys,
                 NodeId node)
{
    PULSE_ASSERT(entry_ == kNullAddr, "graph already built");
    PULSE_ASSERT(!sorted_keys.empty(), "empty build");
    for (std::size_t i = 1; i < sorted_keys.size(); i++) {
        PULSE_ASSERT(sorted_keys[i - 1] < sorted_keys[i],
                     "keys must be strictly increasing");
    }
    size_ = sorted_keys.size();

    // Allocate all vertices first so links can be written in one pass.
    std::vector<VirtAddr> vertices(size_);
    for (std::uint64_t i = 0; i < size_; i++) {
        vertices[i] =
            node == kInvalidNode
                ? alloc_.alloc(kNodeBytes, 256)
                : alloc_.alloc_on(node, kNodeBytes, 256);
        PULSE_ASSERT(vertices[i] != kNullAddr,
                     "out of memory for graph vertex");
    }

    const std::int64_t strides[] = {-8, -4, -2, -1, 1, 2, 4, 8};
    for (std::uint64_t i = 0; i < size_; i++) {
        std::uint8_t buffer[kNodeBytes] = {};
        std::memcpy(buffer + kKeyOff, &sorted_keys[i], 8);
        std::uint64_t count = 0;
        for (const std::int64_t stride : strides) {
            const std::int64_t j = static_cast<std::int64_t>(i) + stride;
            if (j < 0 || j >= static_cast<std::int64_t>(size_)) {
                continue;
            }
            const std::uint32_t off =
                kLinksOff + static_cast<std::uint32_t>(count) * 16;
            std::memcpy(buffer + off, &sorted_keys[j], 8);
            std::memcpy(buffer + off + 8, &vertices[j], 8);
            count++;
        }
        std::memcpy(buffer + kNumOff, &count, 8);
        // Pad unused link slots so the unrolled scan skips them.
        for (std::uint64_t s = count; s < kNeighbors; s++) {
            const std::uint32_t off =
                kLinksOff + static_cast<std::uint32_t>(s) * 16;
            std::memcpy(buffer + off, &kPadKey, 8);
        }
        memory_.write(vertices[i], buffer, kNodeBytes);
    }
    entry_ = vertices[size_ / 2];
}

std::shared_ptr<const isa::Program>
ProxGraph::greedy_program() const
{
    if (program_) {
        return program_;
    }
    using isa::cur;
    using isa::dat;
    using isa::imm;
    using isa::sp;

    isa::ProgramBuilder b;
    b.load(kNodeBytes)
        // cur_dist = |key - target|
        .compare(dat(kKeyOff), sp(kSpTarget))
        .jump_ge("cur_ge")
        .sub(sp(kSpCurDist), sp(kSpTarget), dat(kKeyOff))
        .jump_always("scan")
        .label("cur_ge")
        .sub(sp(kSpCurDist), dat(kKeyOff), sp(kSpTarget))
        .label("scan")
        // best = cur_dist; best_ptr = 0 (meaning "stay here").
        .move(sp(kSpBestDist), sp(kSpCurDist))
        .move(sp(kSpBestPtr), imm(0));
    for (std::uint32_t i = 0; i < kNeighbors; i++) {
        const std::uint32_t key_off = kLinksOff + i * 16;
        const std::uint32_t ptr_off = key_off + 8;
        // tmp = |nbr_key - target| (padding keys give huge distances)
        b.compare(dat(key_off), sp(kSpTarget))
            .jump_ge(lbl("ge", i))
            .sub(sp(kSpTmp), sp(kSpTarget), dat(key_off))
            .jump_always(lbl("cmp", i))
            .label(lbl("ge", i))
            .sub(sp(kSpTmp), dat(key_off), sp(kSpTarget))
            .label(lbl("cmp", i))
            .compare(sp(kSpTmp), sp(kSpBestDist))
            .jump_ge(lbl("skip", i))
            .move(sp(kSpBestDist), sp(kSpTmp))
            .move(sp(kSpBestPtr), dat(ptr_off))
            .label(lbl("skip", i));
    }
    // No strictly closer neighbour: this vertex is the local minimum.
    b.compare(sp(kSpBestPtr), imm(0))
        .jump_neq("hop")
        .move(sp(kSpFoundKey), dat(kKeyOff))
        .move(sp(kSpFoundPtr), cur())
        .ret()
        .label("hop")
        .move(cur(), sp(kSpBestPtr))
        .next_iter();
    b.scratch_bytes(kSpBytes);
    program_ = std::make_shared<const isa::Program>(b.build());
    return program_;
}

offload::Operation
ProxGraph::make_search(std::uint64_t target,
                       offload::CompletionFn done) const
{
    offload::Operation op;
    op.program = greedy_program();
    op.start_ptr = entry_;
    op.init_scratch.assign(kSpBytes, 0);
    std::memcpy(op.init_scratch.data() + kSpTarget, &target, 8);
    op.init_cpu_time = nanos(30.0);
    op.done = std::move(done);
    return op;
}

ProxGraph::SearchResult
ProxGraph::parse_search(const offload::Completion& completion)
{
    SearchResult result;
    if (completion.status != isa::TraversalStatus::kDone ||
        completion.scratch.size() < kSpBytes) {
        return result;
    }
    const auto word = [&](std::uint32_t off) {
        std::uint64_t value = 0;
        std::memcpy(&value, completion.scratch.data() + off, 8);
        return value;
    };
    result.complete = true;
    result.key = word(kSpFoundKey);
    result.vertex = word(kSpFoundPtr);
    result.distance = word(kSpBestDist);
    return result;
}

ProxGraph::SearchResult
ProxGraph::search_reference(std::uint64_t target) const
{
    SearchResult result;
    result.complete = true;
    VirtAddr vertex = entry_;
    for (;;) {
        const std::uint64_t key =
            memory_.read_as<std::uint64_t>(vertex + kKeyOff);
        const std::uint64_t count =
            memory_.read_as<std::uint64_t>(vertex + kNumOff);
        std::uint64_t best_dist = abs_distance(key, target);
        VirtAddr best_ptr = kNullAddr;
        for (std::uint64_t i = 0; i < count; i++) {
            const std::uint32_t off =
                kLinksOff + static_cast<std::uint32_t>(i) * 16;
            const std::uint64_t nbr_key =
                memory_.read_as<std::uint64_t>(vertex + off);
            const std::uint64_t dist = abs_distance(nbr_key, target);
            if (dist < best_dist) {
                best_dist = dist;
                best_ptr =
                    memory_.read_as<std::uint64_t>(vertex + off + 8);
            }
        }
        if (best_ptr == kNullAddr) {
            result.key = key;
            result.vertex = vertex;
            result.distance = best_dist;
            return result;
        }
        vertex = best_ptr;
    }
}

std::shared_ptr<const isa::Program>
ProxGraph::nhood_program(std::uint32_t max_hops) const
{
    PULSE_ASSERT(max_hops >= 1 && max_hops <= 3,
                 "hop count outside the fork-depth budget (a 4-hop "
                 "expansion would overrun the fork-node guard)");
    auto& slot = nhood_programs_[max_hops];
    if (slot) {
        return slot;
    }
    using isa::dat;
    using isa::imm;
    using isa::sp;

    // Each sub-traversal is a single iteration: visit the vertex,
    // fold it, fork the links (hops permitting), JOIN. The DAG shape
    // comes entirely from SPAWN — there is no NEXT_ITER chain.
    isa::ProgramBuilder b;
    b.load(static_cast<std::uint32_t>(kNodeBytes))
        .reduce(isa::ReduceOp::kAdd, kNhCount, 2)
        .add(sp(kNhCount), sp(kNhCount), imm(1))
        .add(sp(kNhKeySum), sp(kNhKeySum), dat(kKeyOff))
        .compare(sp(kNhHops), imm(0))
        .jump_eq("done")
        .sub(sp(kNhHops), sp(kNhHops), imm(1));
    for (std::uint32_t i = 0; i < kNeighbors; i++) {
        // Padded slots hold a null pointer: the SPAWN is a no-op.
        b.spawn(dat(kLinksOff + i * 16 + 8), kNhHops, kNhArgBytes);
    }
    b.label("done").move(sp(kNhFlag), imm(1)).join();
    b.scratch_bytes(kNhBytes);
    b.max_spawn_depth(max_hops);
    slot = std::make_shared<const isa::Program>(b.build());
    return slot;
}

offload::Operation
ProxGraph::make_nhood(VirtAddr start, std::uint32_t hops,
                      offload::CompletionFn done) const
{
    offload::Operation op;
    op.program = nhood_program(hops);
    op.start_ptr = start == kNullAddr ? entry_ : start;
    op.init_scratch.assign(kNhBytes, 0);
    const std::uint64_t hops_word = hops;
    std::memcpy(op.init_scratch.data() + kNhHops, &hops_word, 8);
    op.init_cpu_time = nanos(30.0);
    op.done = std::move(done);
    return op;
}

ProxGraph::NhoodResult
ProxGraph::parse_nhood(const offload::Completion& completion)
{
    NhoodResult result;
    if (completion.status != isa::TraversalStatus::kDone ||
        completion.scratch.size() < kNhBytes) {
        return result;
    }
    const auto word = [&](std::uint32_t off) {
        std::uint64_t value = 0;
        std::memcpy(&value, completion.scratch.data() + off, 8);
        return value;
    };
    result.complete = word(kNhFlag) == 1;
    result.vertices = word(kNhCount);
    result.key_sum = word(kNhKeySum);
    return result;
}

ProxGraph::NhoodResult
ProxGraph::nhood_reference(VirtAddr start, std::uint32_t hops) const
{
    NhoodResult result;
    result.complete = true;
    const VirtAddr vertex = start == kNullAddr ? entry_ : start;
    result.vertices = 1;
    result.key_sum = memory_.read_as<std::uint64_t>(vertex + kKeyOff);
    if (hops == 0) {
        return result;
    }
    const std::uint64_t count =
        memory_.read_as<std::uint64_t>(vertex + kNumOff);
    for (std::uint64_t i = 0; i < count; i++) {
        const std::uint32_t off =
            kLinksOff + static_cast<std::uint32_t>(i) * 16;
        const VirtAddr nbr =
            memory_.read_as<std::uint64_t>(vertex + off + 8);
        if (nbr == kNullAddr) {
            continue;
        }
        const NhoodResult sub = nhood_reference(nbr, hops - 1);
        result.vertices += sub.vertices;
        result.key_sum += sub.key_sum;
    }
    return result;
}

}  // namespace pulse::ds
