#include "faults/fault_plane.h"

namespace pulse::faults {

FaultPlane::FaultPlane(const FaultConfig& config)
    : config_(config), enabled_(config.enabled()), rng_(config.seed)
{
}

std::uint64_t
FaultPlane::link_key(net::EndpointAddr endpoint, LinkDir dir)
{
    const std::uint64_t kind =
        endpoint.kind == net::EndpointAddr::Kind::kClient ? 0 : 1;
    return (kind << 63) |
           (static_cast<std::uint64_t>(dir == LinkDir::kFromSwitch)
            << 62) |
           endpoint.index;
}

PacketFate
FaultPlane::judge(net::EndpointAddr endpoint, LinkDir dir)
{
    PacketFate fate;
    const LinkFaultProfile& profile = config_.links;
    if (!profile.active()) {
        return fate;
    }

    if (profile.bursty) {
        bool& bad = burst_state_[link_key(endpoint, dir)];
        // Evolve the chain, then drop with the state's loss rate.
        if (bad) {
            if (profile.burst_p_exit > 0.0 &&
                rng_.next_bool(profile.burst_p_exit)) {
                bad = false;
            }
        } else if (profile.burst_p_enter > 0.0 &&
                   rng_.next_bool(profile.burst_p_enter)) {
            bad = true;
        }
        const double p =
            bad ? profile.burst_loss_bad : profile.burst_loss_good;
        if (p > 0.0 && rng_.next_bool(p)) {
            stats_.burst_drops.increment();
            fate.drop = true;
            return fate;
        }
    }

    if (profile.loss > 0.0 && rng_.next_bool(profile.loss)) {
        stats_.link_drops.increment();
        fate.drop = true;
        return fate;
    }
    if (profile.corrupt > 0.0 && rng_.next_bool(profile.corrupt)) {
        stats_.corruptions.increment();
        fate.corrupt = true;
        // Guarantee at least one flipped bit so the checksum check
        // cannot accidentally pass.
        fate.corrupt_mask = rng_.next_u64() | 1;
    }
    if (profile.duplicate > 0.0 &&
        rng_.next_bool(profile.duplicate)) {
        stats_.duplicates.increment();
        fate.duplicate = true;
    }
    if (profile.reorder > 0.0 && rng_.next_bool(profile.reorder)) {
        stats_.reorders.increment();
        fate.extra_delay = profile.reorder_jitter > 0
                               ? static_cast<Time>(rng_.next_below(
                                     static_cast<std::uint64_t>(
                                         profile.reorder_jitter) +
                                     1))
                               : 0;
    }
    return fate;
}

bool
FaultPlane::node_dark(NodeId node, Time now) const
{
    for (const NodeFaultWindow& window : config_.timeline) {
        if (window.kind == NodeFaultKind::kBlackout &&
            window.node == node && now >= window.start &&
            now < window.end) {
            return true;
        }
    }
    return false;
}

Time
FaultPlane::node_release(NodeId node, Time now) const
{
    Time release = now;
    for (const NodeFaultWindow& window : config_.timeline) {
        if (window.kind == NodeFaultKind::kStall &&
            window.node == node && now >= window.start &&
            now < window.end && window.end > release) {
            release = window.end;
        }
    }
    return release;
}

double
FaultPlane::node_slow_factor(NodeId node, Time now) const
{
    double factor = 1.0;
    for (const NodeFaultWindow& window : config_.timeline) {
        if (window.kind == NodeFaultKind::kSlow &&
            window.node == node && now >= window.start &&
            now < window.end && window.slow_factor > factor) {
            factor = window.slow_factor;
        }
    }
    return factor;
}

void
FaultPlane::register_stats(const std::string& prefix,
                           StatRegistry& registry)
{
    registry.register_counter(prefix + ".link_drops",
                              &stats_.link_drops);
    registry.register_counter(prefix + ".burst_drops",
                              &stats_.burst_drops);
    registry.register_counter(prefix + ".duplicates",
                              &stats_.duplicates);
    registry.register_counter(prefix + ".corruptions",
                              &stats_.corruptions);
    registry.register_counter(prefix + ".reorders", &stats_.reorders);
    registry.register_counter(prefix + ".blackout_drops",
                              &stats_.blackout_drops);
    registry.register_counter(prefix + ".stall_holds",
                              &stats_.stall_holds);
}

}  // namespace pulse::faults
