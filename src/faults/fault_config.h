/**
 * @file
 * Configuration for the deterministic fault-injection plane.
 *
 * Two orthogonal fault families are modelled, mirroring how related
 * simulators (DRackSim, CXL-DMSim) validate under degradation:
 *
 *  - **Link faults**: every directed link (endpoint <-> switch) can
 *    drop, duplicate, corrupt, or delay (reorder-jitter) packets.
 *    Loss is either independent Bernoulli or a two-state
 *    Gilbert-Elliott chain for bursty-loss episodes.
 *  - **Node faults**: a scripted timeline of per-node windows — stall
 *    (NIC ingress frozen, packets queue until release), blackout
 *    (node dark: everything to/from it is dropped), and slow-node
 *    degradation (every accelerator latency scaled by a factor).
 *
 * All randomness comes from one seeded generator consumed in event
 * order, so a given (config, seed) pair reproduces the exact same
 * fault pattern run-to-run — the determinism contract every test and
 * benchmark in this repository relies on. A default-constructed
 * FaultConfig is *inactive*: no generator is consulted and no timing
 * changes, making the plane a strict no-op when unused.
 */
#ifndef PULSE_FAULTS_FAULT_CONFIG_H
#define PULSE_FAULTS_FAULT_CONFIG_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::faults {

/** Direction of a directed link relative to the switch. */
enum class LinkDir : std::uint8_t {
    kToSwitch,    ///< endpoint uplink (endpoint -> switch)
    kFromSwitch,  ///< endpoint downlink (switch -> endpoint)
};

/** Fault profile applied to packets crossing one directed link. */
struct LinkFaultProfile
{
    /** Independent (Bernoulli) drop probability per packet. */
    double loss = 0.0;

    /** Probability a delivered packet is duplicated once. */
    double duplicate = 0.0;

    /**
     * Probability the packet's header is corrupted in flight. The
     * receiving NIC verifies the header checksum, counts the mismatch,
     * and discards — corrupted requests are never executed.
     */
    double corrupt = 0.0;

    /** Probability a packet picks up extra (reordering) delay. */
    double reorder = 0.0;

    /** Maximum extra delay for reordered packets (uniform in [0, max]). */
    Time reorder_jitter = 0;

    /**
     * Gilbert-Elliott bursty loss. When enabled, each packet first
     * evolves the link's two-state chain (good <-> bad) and then drops
     * with the state's loss rate; the independent `loss` knob above is
     * applied in addition (usually left at zero in bursty mode).
     */
    bool bursty = false;
    double burst_p_enter = 0.0;   ///< P(good -> bad) per packet
    double burst_p_exit = 0.1;    ///< P(bad -> good) per packet
    double burst_loss_good = 0.0; ///< drop probability in the good state
    double burst_loss_bad = 0.5;  ///< drop probability in the bad state

    /** True if any fault in this profile can fire. */
    bool
    active() const
    {
        return loss > 0.0 || duplicate > 0.0 || corrupt > 0.0 ||
               reorder > 0.0 ||
               (bursty &&
                (burst_loss_good > 0.0 ||
                 (burst_p_enter > 0.0 && burst_loss_bad > 0.0)));
    }
};

/** Kinds of scripted per-node degradation. */
enum class NodeFaultKind : std::uint8_t {
    /**
     * The node freezes for the window: packets arriving during it are
     * held at the NIC and delivered at the window's end (in arrival
     * order), modelling a GC-style or firmware stall.
     */
    kStall,

    /**
     * The node is dark for the window (crash/power loss): packets to
     * or from it are dropped. The offload engine's retransmissions
     * either ride out a short blackout or surface a structured
     * timed-out failure — the cluster's graceful-degradation path.
     */
    kBlackout,

    /**
     * Slow-node degradation: every accelerator latency (network stack,
     * scheduler, memory pipeline, logic) is scaled by `slow_factor`
     * for the window, modelling thermal throttling or a failing DIMM.
     */
    kSlow,
};

/** One entry of the scripted node-fault timeline. */
struct NodeFaultWindow
{
    NodeId node = 0;
    NodeFaultKind kind = NodeFaultKind::kStall;
    Time start = 0;  ///< window start (inclusive), simulated time
    Time end = 0;    ///< window end (exclusive)
    double slow_factor = 1.0;  ///< kSlow only: latency multiplier
};

/** Whole-plane configuration. */
struct FaultConfig
{
    /** Seed for the fault plane's private generator. */
    std::uint64_t seed = 0x5eedfa17;

    /** Profile applied to every directed link (uniform default). */
    LinkFaultProfile links;

    /** Scripted per-node fault timeline. */
    std::vector<NodeFaultWindow> timeline;

    /**
     * True when any fault can fire. Clusters only attach a fault
     * plane when this holds, so a default config costs nothing.
     */
    bool
    enabled() const
    {
        return links.active() || !timeline.empty();
    }
};

}  // namespace pulse::faults

#endif  // PULSE_FAULTS_FAULT_CONFIG_H
