#include "faults/nemesis.h"

#include "common/logging.h"
#include "common/random.h"

namespace pulse::faults {

std::vector<NodeFaultWindow>
nemesis_timeline(const NemesisConfig& config)
{
    PULSE_ASSERT(config.num_nodes >= 1, "nemesis needs a node");
    PULSE_ASSERT(config.max_duration >= config.min_duration,
                 "inverted nemesis duration bounds");
    Rng rng(config.seed * 0x9E3779B97F4A7C15ull + 0xFA11);
    std::vector<NodeFaultWindow> timeline;
    timeline.reserve(config.crashes);
    Time start = config.first_start;
    for (std::uint32_t i = 0; i < config.crashes; i++) {
        NodeFaultWindow window;
        window.node =
            static_cast<NodeId>(rng.next_below(config.num_nodes));
        window.kind = rng.next_bool(config.stall_fraction)
                          ? NodeFaultKind::kStall
                          : NodeFaultKind::kBlackout;
        const Time duration =
            config.min_duration +
            static_cast<Time>(rng.next_below(
                static_cast<std::uint64_t>(config.max_duration -
                                           config.min_duration) +
                1));
        // Jitter the start by up to a quarter of the spacing so crash
        // cadence never phase-locks with workload periodicity.
        const Time jitter = static_cast<Time>(
            rng.next_below(static_cast<std::uint64_t>(
                               config.spacing / 4) +
                           1));
        window.start = start + jitter;
        window.end = window.start + duration;
        timeline.push_back(window);
        start += config.spacing;
    }
    return timeline;
}

void
schedule_recoveries(sim::EventQueue& queue,
                    const std::vector<NodeFaultWindow>& timeline,
                    std::function<void(NodeId)> on_recover)
{
    for (const NodeFaultWindow& window : timeline) {
        if (window.end == 0) {
            continue;  // permanent crash: nothing to recover
        }
        const NodeId node = window.node;
        auto fn = on_recover;
        queue.schedule_at(window.end, [node, fn = std::move(fn)] {
            fn(node);
        });
    }
}

}  // namespace pulse::faults
