/**
 * @file
 * Nemesis scheduler: seeded crash/recover scripts over random nodes.
 *
 * Produces deterministic NodeFaultWindow timelines — the crash half of
 * a crash -> detect -> failover -> recover -> re-replicate sequence —
 * for the fuzzer's "nemesis" fault profile, the chaos CAS soak, and
 * the availability bench. The recovery half is driven by the caller:
 * schedule_recoveries() arms one event per window end that tells the
 * replication plane (when present) the node is back, which restarts
 * heartbeat probing and triggers background re-replication.
 */
#ifndef PULSE_FAULTS_NEMESIS_H
#define PULSE_FAULTS_NEMESIS_H

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/fault_config.h"
#include "sim/event_queue.h"

namespace pulse::faults {

/** Shape of one generated crash schedule. */
struct NemesisConfig
{
    std::uint64_t seed = 1;

    /** Nodes the nemesis may target (windows for ids >= the cluster's
     *  actual node count are harmless no-ops in the fault plane). */
    std::uint32_t num_nodes = 2;

    /** Crash windows to script. */
    std::uint32_t crashes = 1;

    /** Earliest window start. */
    Time first_start = micros(100.0);

    /** Gap between consecutive window starts (plus jitter below). */
    Time spacing = micros(400.0);

    /** Window length bounds (uniform). */
    Time min_duration = micros(100.0);
    Time max_duration = micros(300.0);

    /** Fraction of windows that stall instead of black out: the
     *  detector must ride these out without declaring death. */
    double stall_fraction = 0.25;
};

/**
 * Generate the scripted crash windows for @p config. Deterministic:
 * the same config yields the same timeline. Node choice, start jitter,
 * duration, and the stall-vs-blackout coin all come from one seeded
 * stream consumed in window order.
 */
std::vector<NodeFaultWindow> nemesis_timeline(
    const NemesisConfig& config);

/**
 * Arm one event per window end that invokes @p on_recover(node) —
 * typically ReplicationPlane::notify_recovered, so probing resumes and
 * the re-replication loop runs. Windows with end == 0 (a permanent
 * crash) get no recovery event.
 */
void schedule_recoveries(sim::EventQueue& queue,
                         const std::vector<NodeFaultWindow>& timeline,
                         std::function<void(NodeId)> on_recover);

}  // namespace pulse::faults

#endif  // PULSE_FAULTS_NEMESIS_H
