/**
 * @file
 * The fault-injection plane: one object that owns all fault state —
 * the seeded generator, per-link Gilbert-Elliott chains, the scripted
 * node timeline, and the injection counters.
 *
 * The network consults `judge()` once per packet per directed link and
 * `node_dark()`/`node_release()` at delivery; the accelerator consults
 * `node_slow_factor()` when costing its pipelines. All queries are
 * pure functions of (config, seed, call order), so simulations remain
 * bit-deterministic under injected faults.
 */
#ifndef PULSE_FAULTS_FAULT_PLANE_H
#define PULSE_FAULTS_FAULT_PLANE_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/stats.h"
#include "faults/fault_config.h"
#include "net/packet.h"

namespace pulse::faults {

/** Injection counters (registered under "faults." by the cluster). */
struct FaultStats
{
    Counter link_drops;        ///< independent-loss drops
    Counter burst_drops;       ///< Gilbert-Elliott drops
    Counter duplicates;        ///< packets duplicated
    Counter corruptions;       ///< headers corrupted in flight
    Counter reorders;          ///< packets given extra delay
    Counter blackout_drops;    ///< packets dropped at a dark node
    Counter stall_holds;       ///< packets held by a stalled node
};

/** Verdict for one packet crossing one directed link. */
struct PacketFate
{
    bool drop = false;       ///< lost on the link
    bool duplicate = false;  ///< an extra copy is delivered
    bool corrupt = false;    ///< header corrupted (NIC will discard)
    Time extra_delay = 0;    ///< reorder jitter to add
    std::uint64_t corrupt_mask = 0;  ///< nonzero bit flips to apply
};

/** All fault state for one simulated rack. */
class FaultPlane
{
  public:
    explicit FaultPlane(const FaultConfig& config);

    /** True when any fault can ever fire (mirrors config.enabled()). */
    bool enabled() const { return enabled_; }

    /**
     * Judge one packet crossing the directed link of @p endpoint in
     * direction @p dir. Consumes randomness only for knobs that are
     * non-zero, so an all-zero profile never touches the generator.
     */
    PacketFate judge(net::EndpointAddr endpoint, LinkDir dir);

    /** True when @p node is blacked out at time @p now. */
    bool node_dark(NodeId node, Time now) const;

    /**
     * Earliest time a packet arriving at @p node at @p now can be
     * delivered: @p now normally, or the stall window's end when the
     * node is stalled.
     */
    Time node_release(NodeId node, Time now) const;

    /** Latency multiplier for @p node at @p now (1.0 = healthy). */
    double node_slow_factor(NodeId node, Time now) const;

    const FaultStats& stats() const { return stats_; }

    /**
     * Reset injection counters only. Generator and Gilbert-Elliott
     * chain state are process state, not statistics — they survive so
     * warmup/measure splits do not restart the loss process.
     */
    void reset_stats() { stats_ = FaultStats{}; }

    /** Account a stall hold (called by the network when it defers). */
    void count_stall_hold() { stats_.stall_holds.increment(); }

    /** Account a blackout drop (called by the network). */
    void count_blackout_drop() { stats_.blackout_drops.increment(); }

    /** Register the injection counters under @p prefix. */
    void register_stats(const std::string& prefix,
                        StatRegistry& registry);

    const FaultConfig& config() const { return config_; }

  private:
    /** Dense key for one directed link. */
    static std::uint64_t link_key(net::EndpointAddr endpoint,
                                  LinkDir dir);

    FaultConfig config_;
    bool enabled_ = false;
    Rng rng_;
    /** Gilbert-Elliott state per directed link (true = bad state). */
    std::unordered_map<std::uint64_t, bool> burst_state_;
    FaultStats stats_;
};

}  // namespace pulse::faults

#endif  // PULSE_FAULTS_FAULT_PLANE_H
