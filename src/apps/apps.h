/**
 * @file
 * The paper's three evaluation applications (section 7), packaged as
 * reusable setups: each builds its data structure into a cluster's
 * disaggregated memory and exposes an operation factory for the
 * workload driver. Scales are configurable; the defaults are scaled-
 * down versions of the paper's (0.5 B keys -> hundreds of thousands)
 * with the client cache scaled proportionally (DESIGN.md).
 */
#ifndef PULSE_APPS_APPS_H
#define PULSE_APPS_APPS_H

#include <memory>

#include "common/random.h"
#include "core/cluster.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "workloads/driver.h"
#include "workloads/workloads.h"

namespace pulse::apps {

/** Common scale knobs. */
struct AppScale
{
    /** UPC: records in the user-profile cache. */
    std::uint64_t upc_keys = 200'000;

    /** UPC: average chain length (the paper forces ~100 visited
     *  nodes per lookup via a high load factor). */
    std::uint64_t upc_chain = 192;

    /** TC: records in the conversation index. */
    std::uint64_t tc_keys = 150'000;

    /** TSV: trace samples (64 Hz -> ~2 hours by default). */
    std::uint64_t tsv_samples = 450'000;

    /** Fraction of the data set mirrored by client caches (the paper
     *  uses 2 GB against ~120 GB, i.e. ~1.7%). */
    double cache_fraction = 0.02;

    /** UPC: Zipf skew of the lookup stream (0 = uniform, the paper's
     *  YCSB-C setting; 0.99 = the standard YCSB skew). */
    double zipf_theta = 0.0;

    /** UPC: scatter Zipf ranks over the key space (hashed-popularity
     *  model). false keeps hot ranks on the lowest indices, so skew
     *  piles onto one partition — the placement-ablation setup. */
    bool zipf_scatter = true;

    /** UPC: sequential-index bucketing + bucket-major build, so each
     *  chain's nodes are physically contiguous and hot chains form
     *  migratable slabs (see ds::HashTableConfig). */
    bool sequential_buckets = false;
};

/** Data-set size estimates, for sizing client caches up front. */
Bytes upc_data_bytes(const AppScale& scale);
Bytes tc_data_bytes(const AppScale& scale);
Bytes tsv_data_bytes(const AppScale& scale);

/** User-profile cache: YCSB-C lookups on the chained hash table. */
class UpcApp
{
  public:
    UpcApp(core::Cluster& cluster, const AppScale& scale,
           std::uint64_t seed = 1);

    /** Factory for the driver (uniform lookups of existing keys). */
    workloads::OpFactory factory();

    ds::HashTable& table() { return *table_; }
    std::uint64_t num_keys() const { return num_keys_; }

  private:
    std::unique_ptr<ds::HashTable> table_;
    workloads::YcsbC generator_;
    Rng rng_;
    std::uint64_t num_keys_;
};

/** Threaded conversations: YCSB-E scans on the B+Tree. */
class TcApp
{
  public:
    /**
     * @param uniform_alloc true = glibc-like uniform placement
     *        (supp. Fig. 2's "random" policy) instead of partitioned
     */
    TcApp(core::Cluster& cluster, const AppScale& scale,
          bool uniform_alloc = false, std::uint64_t seed = 2);

    workloads::OpFactory factory();

    ds::BPTree& tree() { return *tree_; }

  private:
    std::unique_ptr<ds::BPTree> tree_;
    workloads::YcsbE generator_;
    Rng rng_;
};

/** Time-series visualization: windowed aggregations on the B+Tree. */
class TsvApp
{
  public:
    TsvApp(core::Cluster& cluster, const AppScale& scale,
           double window_seconds, bool uniform_alloc = false,
           std::uint64_t seed = 3);

    workloads::OpFactory factory();

    ds::BPTree& tree() { return *tree_; }
    const workloads::PmuTrace& trace() const { return *trace_; }

  private:
    std::unique_ptr<workloads::PmuTrace> trace_;
    std::unique_ptr<ds::BPTree> tree_;
    std::unique_ptr<workloads::TsvQueries> queries_;
    Rng rng_;
};

}  // namespace pulse::apps

#endif  // PULSE_APPS_APPS_H
