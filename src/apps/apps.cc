#include "apps/apps.h"

#include "common/logging.h"

namespace pulse::apps {

Bytes
upc_data_bytes(const AppScale& scale)
{
    // 256 B chain nodes + 8 B bucket slots.
    return scale.upc_keys * 256 +
           (scale.upc_keys / scale.upc_chain) * 8;
}

Bytes
tc_data_bytes(const AppScale& scale)
{
    // 240 B value objects + leaf/inner nodes (~256 B per 7 entries).
    return scale.tc_keys * (240 + 256 / 7 + 16);
}

Bytes
tsv_data_bytes(const AppScale& scale)
{
    // Inline 16 B entries in 256 B leaves of 12.
    return scale.tsv_samples * (256 / 12 + 8);
}

UpcApp::UpcApp(core::Cluster& cluster, const AppScale& scale,
               std::uint64_t seed)
    : generator_(scale.upc_keys, scale.zipf_theta, scale.zipf_scatter),
      rng_(seed), num_keys_(scale.upc_keys)
{
    ds::HashTableConfig config;
    config.num_buckets =
        std::max<std::uint64_t>(1, scale.upc_keys / scale.upc_chain);
    config.value_bytes = 240;
    // Key-partitioned across all memory nodes (Table 2: UPC is
    // partitionable and never crosses nodes).
    config.partitions = cluster.memory().num_nodes();
    config.sequential_buckets = scale.sequential_buckets;
    table_ = std::make_unique<ds::HashTable>(cluster.memory(),
                                             cluster.allocator(),
                                             config);
    if (scale.sequential_buckets) {
        // Bucket-major build: each chain's nodes come from consecutive
        // bump allocations, so a hot bucket's whole chain sits in one
        // contiguous, slab-migratable range.
        const std::uint64_t buckets = config.num_buckets;
        for (std::uint64_t b = 0; b < buckets; b++) {
            const std::uint64_t first = (b + buckets - 1) % buckets;
            for (std::uint64_t i = first; i < scale.upc_keys;
                 i += buckets) {
                table_->insert(workloads::key_of(i));
            }
        }
    } else {
        for (std::uint64_t i = 0; i < scale.upc_keys; i++) {
            table_->insert(workloads::key_of(i));
        }
    }
}

workloads::OpFactory
UpcApp::factory()
{
    return [this](std::uint64_t) {
        const std::uint64_t key =
            workloads::key_of(generator_.next_index(rng_));
        offload::Operation op = table_->make_find(key, nullptr);
        // Object identity for the Cache+RPC baseline's object cache.
        op.object_id = key;
        op.object_bytes = 256;
        return op;
    };
}

TcApp::TcApp(core::Cluster& cluster, const AppScale& scale,
             bool uniform_alloc, std::uint64_t seed)
    : generator_(scale.tc_keys), rng_(seed)
{
    ds::BPTreeConfig config;
    config.inline_values = false;  // 240 B conversation records
    config.leaf_slots = 8;
    config.leaf_fill = 7;
    config.partitioned = !uniform_alloc;
    config.partitions = cluster.memory().num_nodes();
    // A live store's records were written over time: scatter them.
    config.scatter_values = true;
    tree_ = std::make_unique<ds::BPTree>(cluster.memory(),
                                         cluster.allocator(), config);
    std::vector<ds::BPTreeEntry> entries;
    entries.reserve(scale.tc_keys);
    for (std::uint64_t i = 0; i < scale.tc_keys; i++) {
        entries.push_back({workloads::key_of(i), 0});
    }
    tree_->build(entries);
}

workloads::OpFactory
TcApp::factory()
{
    return [this](std::uint64_t) {
        const workloads::YcsbE::Scan scan = generator_.next(rng_);
        return tree_->make_scan(workloads::key_of(scan.start_index),
                                scan.length, nullptr);
    };
}

TsvApp::TsvApp(core::Cluster& cluster, const AppScale& scale,
               double window_seconds, bool uniform_alloc,
               std::uint64_t seed)
    : rng_(seed)
{
    trace_ = std::make_unique<workloads::PmuTrace>(scale.tsv_samples);
    ds::BPTreeConfig config;
    config.inline_values = true;
    config.leaf_slots = 12;
    config.leaf_fill = 12;
    config.partitioned = !uniform_alloc;
    config.partitions = cluster.memory().num_nodes();
    // A long-lived tree built by chronological insertion fragments its
    // leaf allocations (DESIGN.md); model a ~0.9 KB average gap.
    config.leaf_alloc_gap_max = 7 * 256;
    tree_ = std::make_unique<ds::BPTree>(cluster.memory(),
                                         cluster.allocator(), config);
    tree_->build(trace_->entries());
    queries_ = std::make_unique<workloads::TsvQueries>(*trace_,
                                                       window_seconds);
}

workloads::OpFactory
TsvApp::factory()
{
    return [this](std::uint64_t) {
        const workloads::TsvQueries::Query query = queries_->next(rng_);
        return tree_->make_aggregate(query.kind, query.lo, query.hi,
                                     nullptr);
    };
}

}  // namespace pulse::apps
