/**
 * @file
 * The complete traversal loop (the execute() of Listing 1), with
 * pluggable memory access.
 *
 * run_traversal() drives a verified program to completion: per iteration
 * it performs the aggregated LOAD through the supplied memory callbacks,
 * runs the logic via the interpreter, applies pending STOREs, and either
 * follows cur_ptr into the next iteration or finishes. The callbacks are
 * what distinguish execution sites:
 *   - the accelerator model wires them to the node's TCAM + channels,
 *   - the RPC CPU model wires them to node-local DRAM timing,
 *   - the cache-based client wires them to its page cache,
 *   - tests wire them to plain GlobalMemory.
 */
#ifndef PULSE_ISA_TRAVERSAL_H
#define PULSE_ISA_TRAVERSAL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/scratch_buffer.h"
#include "common/types.h"
#include "isa/interpreter.h"

namespace pulse::isa {

/** Why a traversal stopped. */
enum class TraversalStatus : std::uint8_t {
    kDone,        ///< RETURN reached; scratch_pad is the result
    kMaxIter,     ///< iteration cap hit; resume from cur_ptr if desired
    kExecFault,   ///< logic fault (divide by zero, ...)
    kMemFault,    ///< load/store failed (unmapped or protected address)
    kNotLocal,    ///< cur_ptr left the local node (accelerator use only)
    /**
     * QoS admission control rejected the request before any iteration
     * ran (serving plane, src/serve): a load-shed typed rejection. The
     * issuing engine completes the operation as a retryable failure, so
     * the driver's existing retry/backoff path re-submits it.
     */
    kRejected,
};

/** Final state of a traversal (mirrors the response packet payload). */
struct TraversalOutcome
{
    TraversalStatus status = TraversalStatus::kDone;
    ExecFault fault = ExecFault::kNone;
    std::uint64_t iterations = 0;
    std::uint64_t instructions = 0;  ///< total logic instructions run
    VirtAddr final_ptr = kNullAddr;
    std::vector<std::uint8_t> scratch;
};

/**
 * Memory access callbacks. Return false to signal a memory fault
 * (unmapped address / permission failure); kNotLocal is signalled by
 * the *caller* checking locality before invoking run_traversal.
 */
struct MemoryHooks
{
    std::function<bool(VirtAddr addr, std::uint32_t len,
                       std::uint8_t* out)> load;
    std::function<bool(VirtAddr addr, std::uint32_t len,
                       const std::uint8_t* in)> store;

    /**
     * Atomic CAS of the 64-bit word at @p addr (absolute). Absent =>
     * the kCas extension faults at this execution site.
     */
    std::function<bool(VirtAddr addr, std::uint64_t expected,
                       std::uint64_t desired)> cas;
};

/**
 * Run @p program from @p start_ptr with initial scratch_pad contents
 * @p init_scratch (shorter-than-configured contents are zero-padded).
 * @p max_iters of 0 uses the program's own cap.
 */
TraversalOutcome run_traversal(const Program& program, VirtAddr start_ptr,
                               const std::vector<std::uint8_t>& init_scratch,
                               const MemoryHooks& hooks,
                               std::uint32_t max_iters = 0);

/**
 * Same, seeded from an inline ScratchBuffer (what Operation carries).
 * Avoids materializing a vector just to seed the workspace.
 */
TraversalOutcome run_traversal(const Program& program, VirtAddr start_ptr,
                               const ScratchBuffer& init_scratch,
                               const MemoryHooks& hooks,
                               std::uint32_t max_iters = 0);

}  // namespace pulse::isa

#endif  // PULSE_ISA_TRAVERSAL_H
