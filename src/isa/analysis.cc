#include "isa/analysis.h"

#include <algorithm>
#include <vector>

namespace pulse::isa {

ProgramAnalysis
analyze(const Program& program)
{
    ProgramAnalysis analysis;
    analysis.valid = program.verify(&analysis.error);
    if (!analysis.valid) {
        return analysis;
    }

    const auto& code = program.code();
    analysis.num_instructions = static_cast<std::uint32_t>(code.size());
    analysis.load_bytes = program.load_bytes();

    for (const Instruction& insn : code) {
        if (insn.op == Opcode::kStore) {
            analysis.has_store = true;
        }
        if (insn.op == Opcode::kDiv) {
            analysis.has_div = true;
        }
        if (insn.op == Opcode::kCas) {
            analysis.has_cas = true;
        }
        if (insn.op == Opcode::kSpawn) {
            analysis.has_spawn = true;
            analysis.spawn_sites++;
        }
        if (insn.op == Opcode::kReduce) {
            // verify() guarantees exactly one REDUCE iff the program
            // spawns, and that the accumulator window fits scratch.
            analysis.reduce_op =
                static_cast<ReduceOp>(insn.src2.value);
            analysis.reduce_offset =
                static_cast<std::uint32_t>(insn.dst.value);
            analysis.reduce_lanes =
                static_cast<std::uint32_t>(insn.src1.value);
            analysis.scratch_footprint = std::max(
                analysis.scratch_footprint,
                analysis.reduce_offset + 8 * analysis.reduce_lanes);
        }
        for (const Operand* operand :
             {&insn.dst, &insn.src1, &insn.src2}) {
            if (operand->kind == OperandKind::kData) {
                analysis.max_data_ref = std::max(
                    analysis.max_data_ref,
                    static_cast<std::uint32_t>(operand->value) +
                        operand->width);
            } else if (operand->kind == OperandKind::kScratch) {
                analysis.scratch_footprint = std::max(
                    analysis.scratch_footprint,
                    static_cast<std::uint32_t>(operand->value) +
                        operand->width);
            }
        }
    }

    // Longest logic path through the forward-jump DAG. longest[i] is the
    // worst-case number of *logic* instructions executed starting at i.
    // LOAD (handled by the memory pipeline) and terminals cost zero
    // logic-pipeline slots beyond their dispatch, which we count as one
    // to stay conservative.
    const std::size_t n = code.size();
    std::vector<std::uint32_t> longest(n + 1, 0);
    for (std::size_t idx = n; idx-- > 0;) {
        const Instruction& insn = code[idx];
        switch (insn.op) {
          case Opcode::kLoad:
            longest[idx] = longest[idx + 1];  // memory pipeline's job
            break;
          case Opcode::kReturn:
          case Opcode::kNextIter:
          case Opcode::kJoin:
            longest[idx] = 1;
            break;
          case Opcode::kJump: {
            const std::uint32_t taken = longest[insn.target];
            const std::uint32_t fall =
                insn.cond == Cond::kAlways ? 0 : longest[idx + 1];
            longest[idx] = 1 + std::max(taken, fall);
            break;
          }
          default:
            longest[idx] = 1 + longest[idx + 1];
            break;
        }
    }
    analysis.worst_path_instructions = longest[0];
    return analysis;
}

Time
compute_time(const ProgramAnalysis& analysis, Time t_i)
{
    return static_cast<Time>(analysis.worst_path_instructions) * t_i;
}

double
compute_eta(const ProgramAnalysis& analysis, Time t_i, Time t_d)
{
    if (t_d <= 0) {
        return 0.0;
    }
    return static_cast<double>(compute_time(analysis, t_i)) /
           static_cast<double>(t_d);
}

}  // namespace pulse::isa
