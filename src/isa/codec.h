/**
 * @file
 * Binary wire format for pulse programs.
 *
 * Requests carry their traversal code with them (paper section 4.1), and
 * responses carry it onward so a switch-forwarded continuation on another
 * memory node needs no code-distribution protocol (section 5). The codec
 * therefore defines the exact byte layout, which the network models use
 * for honest bandwidth accounting.
 *
 * Layout (little-endian):
 *   header: num_insns u16 | scratch_bytes u16 | iter_word u32    (8 B)
 *   per instruction (39 B fixed):
 *     op u8 | cond u8 | target u32 | 3 x operand
 *   operand (11 B): kind u8 | width u16 | value u64
 *
 * iter_word packs max_iters in its low 24 bits and max_spawn_depth
 * (fork/join extension) in the top byte, so programs with depth 0 —
 * every sequential program — encode bit-identically to the format
 * that predates the extension. max_iters must stay below 2^24
 * (asserted on encode; the engine's global iteration guard is 2^20).
 */
#ifndef PULSE_ISA_CODEC_H
#define PULSE_ISA_CODEC_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.h"
#include "isa/program.h"

namespace pulse::isa {

/** Encoded size of @p program in bytes (diagnostic format below). */
Bytes encoded_size(const Program& program);

/**
 * Modelled on-the-wire code size: a production encoding packs each
 * instruction into 64 bits (RISC-style fields; operand offsets are
 * always < 4 KiB) with a deduplicated pool of 64-bit immediates that
 * don't fit in 16 bits. Network bandwidth accounting uses this; the
 * byte-exact diagnostic format above is used for serialization tests
 * and tooling.
 */
Bytes wire_code_size(const Program& program);

/** Serialize @p program. */
std::vector<std::uint8_t> encode_program(const Program& program);

/**
 * Deserialize a program from @p bytes. Returns nullopt on a malformed
 * buffer (truncated, bad enum values, ...). The decoded program is NOT
 * auto-verified; accelerators verify on receipt.
 */
std::optional<Program> decode_program(
    const std::vector<std::uint8_t>& bytes);

}  // namespace pulse::isa

#endif  // PULSE_ISA_CODEC_H
