#include "isa/interpreter.h"

#include <cstring>
#include <string_view>

#include "common/logging.h"

namespace pulse::isa {
namespace {

std::uint64_t
read_bytes(const std::vector<std::uint8_t>& storage, std::uint64_t offset,
           std::uint8_t width)
{
    PULSE_ASSERT(offset + width <= storage.size(),
                 "operand read out of range (verifier bug)");
    std::uint64_t value = 0;
    std::memcpy(&value, storage.data() + offset, width);
    return value;
}

void
write_bytes(std::vector<std::uint8_t>& storage, std::uint64_t offset,
            std::uint8_t width, std::uint64_t value)
{
    PULSE_ASSERT(offset + width <= storage.size(),
                 "operand write out of range (verifier bug)");
    std::memcpy(storage.data() + offset, &value, width);
}

bool
cond_holds(Cond cond, int flags)
{
    switch (cond) {
      case Cond::kAlways: return true;
      case Cond::kEq: return flags == 0;
      case Cond::kNeq: return flags != 0;
      case Cond::kLt: return flags < 0;
      case Cond::kGt: return flags > 0;
      case Cond::kLe: return flags <= 0;
      case Cond::kGe: return flags >= 0;
    }
    return false;
}

InterpreterMutation g_mutation = InterpreterMutation::kNone;

}  // namespace

void
set_interpreter_mutation(InterpreterMutation mutation)
{
    g_mutation = mutation;
}

InterpreterMutation
interpreter_mutation()
{
    return g_mutation;
}

bool
mutation_from_name(const char* name, InterpreterMutation* out)
{
    const std::string_view sv(name);
    if (sv == "none") {
        *out = InterpreterMutation::kNone;
    } else if (sv == "add-off-by-one") {
        *out = InterpreterMutation::kAddOffByOne;
    } else if (sv == "compare-inverted") {
        *out = InterpreterMutation::kCompareInverted;
    } else if (sv == "store-drop-byte") {
        *out = InterpreterMutation::kStoreDropByte;
    } else if (sv == "drop-one-branch") {
        *out = InterpreterMutation::kSpawnDropBranch;
    } else if (sv == "double-join") {
        *out = InterpreterMutation::kSpawnDoubleJoin;
    } else {
        return false;
    }
    return true;
}

void
Workspace::configure(const Program& program)
{
    scratch.assign(program.scratch_bytes(), 0);
    data.assign(kMaxLoadBytes, 0);
    cur_ptr = kNullAddr;
    flags = 0;
    spawn_depth = 0;
}

std::uint64_t
Workspace::read(const Operand& operand) const
{
    switch (operand.kind) {
      case OperandKind::kImm:
        return operand.value;
      case OperandKind::kCurPtr:
        return cur_ptr;
      case OperandKind::kScratch:
        return read_bytes(scratch, operand.value, operand.width);
      case OperandKind::kData:
        return read_bytes(data, operand.value, operand.width);
      case OperandKind::kNone:
        break;
    }
    panic("read of kNone operand");
}

void
Workspace::write(const Operand& operand, std::uint64_t value)
{
    switch (operand.kind) {
      case OperandKind::kCurPtr:
        cur_ptr = value;
        return;
      case OperandKind::kScratch:
        write_bytes(scratch, operand.value, operand.width, value);
        return;
      case OperandKind::kData:
        write_bytes(data, operand.value, operand.width, value);
        return;
      default:
        panic("write to non-writable operand");
    }
}

IterationResult
run_iteration(const Program& program, Workspace& workspace,
              const CasFn& cas)
{
    IterationResult result;
    bool dropped_spawn = false;
    const auto& code = program.code();
    // Skip the LOAD at instruction 0: the memory pipeline performs it.
    std::uint32_t pc = (!code.empty() &&
                        code.front().op == Opcode::kLoad) ? 1 : 0;

    while (pc < code.size()) {
        const Instruction& insn = code[pc];
        result.instructions_executed++;
        switch (insn.op) {
          case Opcode::kLoad:
            // verify() guarantees LOAD only at index 0.
            result.end = IterEnd::kFault;
            result.fault = ExecFault::kIllegalInstruction;
            return result;
          case Opcode::kStore: {
            auto length = static_cast<std::uint32_t>(insn.src2.value);
            if (g_mutation == InterpreterMutation::kStoreDropByte &&
                length > 0) {
                length--;
            }
            result.stores.push_back(PendingStore{
                .mem_offset = insn.dst.value,
                .data_offset = static_cast<std::uint32_t>(insn.src1.value),
                .length = length,
            });
            break;
          }
          case Opcode::kAdd:
            workspace.write(
                insn.dst,
                workspace.read(insn.src1) + workspace.read(insn.src2) +
                    (g_mutation == InterpreterMutation::kAddOffByOne
                         ? 1
                         : 0));
            break;
          case Opcode::kSub:
            workspace.write(insn.dst, workspace.read(insn.src1) -
                                          workspace.read(insn.src2));
            break;
          case Opcode::kMul:
            workspace.write(insn.dst, workspace.read(insn.src1) *
                                          workspace.read(insn.src2));
            break;
          case Opcode::kDiv: {
            const std::uint64_t divisor = workspace.read(insn.src2);
            if (divisor == 0) {
                result.end = IterEnd::kFault;
                result.fault = ExecFault::kDivideByZero;
                return result;
            }
            workspace.write(insn.dst,
                            workspace.read(insn.src1) / divisor);
            break;
          }
          case Opcode::kAnd:
            workspace.write(insn.dst, workspace.read(insn.src1) &
                                          workspace.read(insn.src2));
            break;
          case Opcode::kOr:
            workspace.write(insn.dst, workspace.read(insn.src1) |
                                          workspace.read(insn.src2));
            break;
          case Opcode::kNot:
            workspace.write(insn.dst, ~workspace.read(insn.src1));
            break;
          case Opcode::kMove:
            if (insn.dst.width > 8) {
                // Register-vector transfer (verify() guarantees both
                // operands are vectors of equal width).
                auto& dst_vec =
                    insn.dst.kind == OperandKind::kScratch
                        ? workspace.scratch
                        : workspace.data;
                const auto& src_vec =
                    insn.src1.kind == OperandKind::kScratch
                        ? workspace.scratch
                        : workspace.data;
                PULSE_ASSERT(insn.dst.value + insn.dst.width <=
                                     dst_vec.size() &&
                                 insn.src1.value + insn.src1.width <=
                                     src_vec.size(),
                             "vector move out of range (verifier bug)");
                std::memmove(dst_vec.data() + insn.dst.value,
                             src_vec.data() + insn.src1.value,
                             insn.dst.width);
            } else {
                workspace.write(insn.dst, workspace.read(insn.src1));
            }
            break;
          case Opcode::kCompare: {
            const auto a = static_cast<std::int64_t>(
                workspace.read(insn.src1));
            const auto b = static_cast<std::int64_t>(
                workspace.read(insn.src2));
            workspace.flags = (a < b) ? -1 : (a > b) ? 1 : 0;
            if (g_mutation == InterpreterMutation::kCompareInverted) {
                workspace.flags = -workspace.flags;
            }
            break;
          }
          case Opcode::kJump:
            if (cond_holds(insn.cond, workspace.flags)) {
                pc = insn.target;
                continue;
            }
            break;
          case Opcode::kReturn:
            result.end = IterEnd::kReturn;
            return result;
          case Opcode::kNextIter:
            result.end = IterEnd::kNextIter;
            return result;
          case Opcode::kSpawn: {
            if (workspace.spawn_depth >= program.max_spawn_depth()) {
                result.end = IterEnd::kFault;
                result.fault = ExecFault::kSpawnDepth;
                return result;
            }
            const VirtAddr child = workspace.read(insn.src1);
            if (child == kNullAddr) {
                // Null-pointer spawn is a no-op: the conditional-fork
                // idiom (e.g. padded child-pointer slots).
                break;
            }
            if (g_mutation == InterpreterMutation::kSpawnDropBranch &&
                !dropped_spawn) {
                // Mutation: the iteration's first branch vanishes.
                dropped_spawn = true;
                break;
            }
            SpawnRecord record;
            record.start_ptr = child;
            record.arg_offset =
                static_cast<std::uint16_t>(insn.dst.value);
            record.arg_length = insn.dst.width;
            PULSE_ASSERT(record.arg_offset + record.arg_length <=
                             workspace.scratch.size(),
                         "spawn args out of range (verifier bug)");
            std::memcpy(record.args,
                        workspace.scratch.data() + record.arg_offset,
                        record.arg_length);
            result.spawns.push_back(record);
            if (g_mutation == InterpreterMutation::kSpawnDoubleJoin) {
                // Mutation: the branch joins twice (the duplicate is a
                // distinct branch index at the engine).
                result.spawns.push_back(record);
            }
            break;
          }
          case Opcode::kReduce:
            // The declaration is consumed by static analysis; at
            // runtime it costs one instruction slot and does nothing.
            break;
          case Opcode::kJoin:
            result.end = IterEnd::kJoin;
            return result;
          case Opcode::kCas: {
            if (!cas) {
                // This execution site has no atomic path.
                result.end = IterEnd::kFault;
                result.fault = ExecFault::kIllegalInstruction;
                return result;
            }
            const bool swapped =
                cas(insn.dst.value, workspace.read(insn.src1),
                    workspace.read(insn.src2));
            workspace.flags = swapped ? 0 : 1;  // EQ on success
            break;
          }
        }
        pc++;
    }
    // verify() guarantees the last instruction is terminal, so this is
    // unreachable for verified programs.
    panic("iteration fell off the end of a verified program");
}

}  // namespace pulse::isa
