#include "isa/instruction.h"

#include <cstdio>
#include <string>

namespace pulse::isa {

const char*
opcode_name(Opcode op)
{
    switch (op) {
      case Opcode::kLoad: return "LOAD";
      case Opcode::kStore: return "STORE";
      case Opcode::kAdd: return "ADD";
      case Opcode::kSub: return "SUB";
      case Opcode::kMul: return "MUL";
      case Opcode::kDiv: return "DIV";
      case Opcode::kAnd: return "AND";
      case Opcode::kOr: return "OR";
      case Opcode::kNot: return "NOT";
      case Opcode::kMove: return "MOVE";
      case Opcode::kCompare: return "COMPARE";
      case Opcode::kJump: return "JUMP";
      case Opcode::kReturn: return "RETURN";
      case Opcode::kNextIter: return "NEXT_ITER";
      case Opcode::kCas: return "CAS";
      case Opcode::kSpawn: return "SPAWN";
      case Opcode::kReduce: return "REDUCE";
      case Opcode::kJoin: return "JOIN";
    }
    return "?";
}

std::uint64_t
reduce_identity(ReduceOp op)
{
    switch (op) {
      case ReduceOp::kAdd:
      case ReduceOp::kOr:
      case ReduceOp::kXor:
      case ReduceOp::kMax:
        return 0;
      case ReduceOp::kAnd:
      case ReduceOp::kMin:
        return ~0ull;
    }
    return 0;
}

std::uint64_t
reduce_apply(ReduceOp op, std::uint64_t acc, std::uint64_t value)
{
    switch (op) {
      case ReduceOp::kAdd: return acc + value;
      case ReduceOp::kAnd: return acc & value;
      case ReduceOp::kOr: return acc | value;
      case ReduceOp::kXor: return acc ^ value;
      case ReduceOp::kMin: return value < acc ? value : acc;
      case ReduceOp::kMax: return value > acc ? value : acc;
    }
    return acc;
}

const char*
reduce_op_name(ReduceOp op)
{
    switch (op) {
      case ReduceOp::kAdd: return "ADD";
      case ReduceOp::kAnd: return "AND";
      case ReduceOp::kOr: return "OR";
      case ReduceOp::kXor: return "XOR";
      case ReduceOp::kMin: return "MIN";
      case ReduceOp::kMax: return "MAX";
    }
    return "?";
}

bool
reduce_op_from_name(const char* name, ReduceOp* out)
{
    const std::string text(name);
    if (text == "ADD") {
        *out = ReduceOp::kAdd;
    } else if (text == "AND") {
        *out = ReduceOp::kAnd;
    } else if (text == "OR") {
        *out = ReduceOp::kOr;
    } else if (text == "XOR") {
        *out = ReduceOp::kXor;
    } else if (text == "MIN") {
        *out = ReduceOp::kMin;
    } else if (text == "MAX") {
        *out = ReduceOp::kMax;
    } else {
        return false;
    }
    return true;
}

const char*
cond_name(Cond cond)
{
    switch (cond) {
      case Cond::kAlways: return "ALWAYS";
      case Cond::kEq: return "EQ";
      case Cond::kNeq: return "NEQ";
      case Cond::kLt: return "LT";
      case Cond::kGt: return "GT";
      case Cond::kLe: return "LE";
      case Cond::kGe: return "GE";
    }
    return "?";
}

std::string
operand_to_string(const Operand& operand)
{
    char buf[64];
    switch (operand.kind) {
      case OperandKind::kNone:
        return "_";
      case OperandKind::kImm:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(operand.value));
        return buf;
      case OperandKind::kCurPtr:
        return "cur_ptr";
      case OperandKind::kScratch:
        std::snprintf(buf, sizeof(buf), "sp[%llu:%u]",
                      static_cast<unsigned long long>(operand.value),
                      operand.width);
        return buf;
      case OperandKind::kData:
        std::snprintf(buf, sizeof(buf), "data[%llu:%u]",
                      static_cast<unsigned long long>(operand.value),
                      operand.width);
        return buf;
    }
    return "?";
}

}  // namespace pulse::isa
