#include "isa/instruction.h"

#include <cstdio>

namespace pulse::isa {

const char*
opcode_name(Opcode op)
{
    switch (op) {
      case Opcode::kLoad: return "LOAD";
      case Opcode::kStore: return "STORE";
      case Opcode::kAdd: return "ADD";
      case Opcode::kSub: return "SUB";
      case Opcode::kMul: return "MUL";
      case Opcode::kDiv: return "DIV";
      case Opcode::kAnd: return "AND";
      case Opcode::kOr: return "OR";
      case Opcode::kNot: return "NOT";
      case Opcode::kMove: return "MOVE";
      case Opcode::kCompare: return "COMPARE";
      case Opcode::kJump: return "JUMP";
      case Opcode::kReturn: return "RETURN";
      case Opcode::kNextIter: return "NEXT_ITER";
      case Opcode::kCas: return "CAS";
    }
    return "?";
}

const char*
cond_name(Cond cond)
{
    switch (cond) {
      case Cond::kAlways: return "ALWAYS";
      case Cond::kEq: return "EQ";
      case Cond::kNeq: return "NEQ";
      case Cond::kLt: return "LT";
      case Cond::kGt: return "GT";
      case Cond::kLe: return "LE";
      case Cond::kGe: return "GE";
    }
    return "?";
}

std::string
operand_to_string(const Operand& operand)
{
    char buf[64];
    switch (operand.kind) {
      case OperandKind::kNone:
        return "_";
      case OperandKind::kImm:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(operand.value));
        return buf;
      case OperandKind::kCurPtr:
        return "cur_ptr";
      case OperandKind::kScratch:
        std::snprintf(buf, sizeof(buf), "sp[%llu:%u]",
                      static_cast<unsigned long long>(operand.value),
                      operand.width);
        return buf;
      case OperandKind::kData:
        std::snprintf(buf, sizeof(buf), "data[%llu:%u]",
                      static_cast<unsigned long long>(operand.value),
                      operand.width);
        return buf;
    }
    return "?";
}

}  // namespace pulse::isa
