/**
 * @file
 * Functional execution of pulse ISA iterations.
 *
 * The Workspace mirrors the accelerator's per-iterator register state
 * (section 4.2.1): the cur_ptr register, the scratch_pad register
 * vector, the data register vector filled by the iteration's LOAD, and
 * the comparison flags. run_iteration() executes the *logic* portion of
 * one iteration — everything after the LOAD — exactly as the logic
 * pipeline would, and reports how the iteration ended plus any STOREs
 * the memory pipeline must apply.
 *
 * Every timed execution path (accelerator model, RPC CPU model, client
 * fallback) funnels through this interpreter, so all systems compute
 * identical results by construction and differ only in timing.
 */
#ifndef PULSE_ISA_INTERPRETER_H
#define PULSE_ISA_INTERPRETER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace pulse::isa {

/** Per-iterator register state (one accelerator workspace). */
struct Workspace
{
    VirtAddr cur_ptr = kNullAddr;
    int flags = 0;  ///< COMPARE result: sign of (src1 - src2)
    /** Fork depth of the executing traversal (0 = the root). SPAWN
     *  faults once this reaches the program's max_spawn_depth. */
    std::uint32_t spawn_depth = 0;
    std::vector<std::uint8_t> scratch;
    std::vector<std::uint8_t> data;

    /** Size scratch/data for @p program. */
    void configure(const Program& program);

    /** Zero-extend read of an operand. */
    std::uint64_t read(const Operand& operand) const;

    /** Truncating write to an operand (must be writable). */
    void write(const Operand& operand, std::uint64_t value);
};

/** How an iteration's logic ended. */
enum class IterEnd : std::uint8_t {
    kNextIter,  ///< continue: cur_ptr holds the next pointer
    kReturn,    ///< traversal complete; scratch_pad is the result
    kFault,     ///< execution fault (e.g. divide by zero)
    kJoin,      ///< own chain done; request completes when the spawned
                ///< subtrees have all reduced (fork/join extension)
};

/** Faults the logic pipeline can raise. */
enum class ExecFault : std::uint8_t {
    kNone,
    kDivideByZero,
    kIllegalInstruction,
    kSpawnDepth,     ///< SPAWN at the program's max_spawn_depth
    kSpawnOverflow,  ///< spawn-list capacity or fork-node guard hit
};

/** A STORE captured during the iteration, for the memory pipeline. */
struct PendingStore
{
    std::uint64_t mem_offset = 0;   ///< relative to iteration-start cur_ptr
    std::uint32_t data_offset = 0;  ///< source offset in data registers
    std::uint32_t length = 0;
};

/**
 * A sub-traversal the iteration SPAWNed. The argument bytes are
 * captured at spawn time (later instructions may overwrite the source
 * scratch window) and land at [arg_offset, arg_offset+arg_length) of
 * the child's otherwise-zeroed scratch_pad.
 */
struct SpawnRecord
{
    VirtAddr start_ptr = kNullAddr;
    std::uint16_t arg_offset = 0;
    std::uint16_t arg_length = 0;
    std::uint8_t args[kSpawnArgBytes] = {};
};

/** Result of one iteration's logic execution. */
struct IterationResult
{
    IterEnd end = IterEnd::kReturn;
    ExecFault fault = ExecFault::kNone;
    std::uint32_t instructions_executed = 0;
    std::vector<PendingStore> stores;
    std::vector<SpawnRecord> spawns;
};

/**
 * Atomic compare-and-swap callback for the kCas extension: swap the
 * 64-bit word at @p mem_offset (relative to the iteration's cur_ptr)
 * from @p expected to @p desired; returns whether the swap happened.
 * Execution sites guarantee event-level atomicity.
 */
using CasFn = std::function<bool(std::uint64_t mem_offset,
                                 std::uint64_t expected,
                                 std::uint64_t desired)>;

/**
 * Execute the logic portion of one iteration of @p program over
 * @p workspace. Assumes the data registers already hold the LOADed
 * bytes. The program must have passed verify(). @p cas backs the
 * kCas extension; sites without one fault on kCas.
 */
IterationResult run_iteration(const Program& program,
                              Workspace& workspace,
                              const CasFn& cas = nullptr);

/**
 * Deliberate bugs injectable into run_iteration for mutation-testing
 * the golden oracle (docs/TESTING.md): the check/ reference
 * interpreter is an independent implementation, so any of these must
 * surface as an oracle mismatch. Never enabled in normal runs.
 */
enum class InterpreterMutation : std::uint8_t {
    kNone,             ///< faithful semantics
    kAddOffByOne,      ///< ADD produces src1 + src2 + 1
    kCompareInverted,  ///< COMPARE flags get the opposite sign
    kStoreDropByte,    ///< STORE writes one byte short
    /**
     * Fork-aware mutations: the first SPAWN an iteration executes is
     * silently skipped (a branch goes missing from the DAG), or every
     * SPAWN emits its record twice (the duplicate is a *new* branch at
     * the engine, so the join double-counts — a same-branch duplicate
     * would be absorbed by exactly-once dedup and prove nothing).
     */
    kSpawnDropBranch,  ///< "drop-one-branch"
    kSpawnDoubleJoin,  ///< "double-join"
};

/** Set the active mutation (process-wide; tests/tools only). */
void set_interpreter_mutation(InterpreterMutation mutation);

/** Currently active mutation. */
InterpreterMutation interpreter_mutation();

/**
 * Parse a mutation name ("none", "add-off-by-one",
 * "compare-inverted", "store-drop-byte", "drop-one-branch",
 * "double-join"); false on unknown names.
 */
bool mutation_from_name(const char* name, InterpreterMutation* out);

}  // namespace pulse::isa

#endif  // PULSE_ISA_INTERPRETER_H
