#include "isa/assembler.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace pulse::isa {
namespace {

/** Tokenized view of one source line. */
std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (const char c : line) {
        if (c == ';' || c == '#') {
            break;
        }
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty()) {
        tokens.push_back(current);
    }
    return tokens;
}

bool
parse_u64(const std::string& text, std::uint64_t* out)
{
    if (text.empty()) {
        return false;
    }
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 0);
    if (end == nullptr || *end != '\0') {
        return false;
    }
    *out = value;
    return true;
}

bool
parse_operand(const std::string& text, Operand* out)
{
    if (text == "cur_ptr") {
        *out = cur();
        return true;
    }
    for (const auto& [prefix, kind] :
         {std::pair<std::string, OperandKind>{"sp[", OperandKind::kScratch},
          {"data[", OperandKind::kData}}) {
        if (text.rfind(prefix, 0) == 0 && text.back() == ']') {
            const std::string inner =
                text.substr(prefix.size(),
                            text.size() - prefix.size() - 1);
            const auto colon = inner.find(':');
            std::uint64_t offset = 0;
            std::uint64_t width = 8;
            if (colon == std::string::npos) {
                if (!parse_u64(inner, &offset)) {
                    return false;
                }
            } else {
                if (!parse_u64(inner.substr(0, colon), &offset) ||
                    !parse_u64(inner.substr(colon + 1), &width)) {
                    return false;
                }
            }
            *out = Operand{kind, static_cast<std::uint16_t>(width),
                           offset};
            return true;
        }
    }
    std::uint64_t value = 0;
    if (parse_u64(text, &value)) {
        *out = imm(value);
        return true;
    }
    return false;
}

std::optional<Cond>
parse_jump_cond(const std::string& mnemonic)
{
    static const std::map<std::string, Cond> conds = {
        {"JUMP", Cond::kAlways},    {"JUMP_EQ", Cond::kEq},
        {"JUMP_NEQ", Cond::kNeq},   {"JUMP_LT", Cond::kLt},
        {"JUMP_GT", Cond::kGt},     {"JUMP_LE", Cond::kLe},
        {"JUMP_GE", Cond::kGe},
    };
    const auto it = conds.find(mnemonic);
    if (it == conds.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::optional<Opcode>
parse_alu(const std::string& mnemonic)
{
    static const std::map<std::string, Opcode> ops = {
        {"ADD", Opcode::kAdd}, {"SUB", Opcode::kSub},
        {"MUL", Opcode::kMul}, {"DIV", Opcode::kDiv},
        {"AND", Opcode::kAnd}, {"OR", Opcode::kOr},
    };
    const auto it = ops.find(mnemonic);
    if (it == ops.end()) {
        return std::nullopt;
    }
    return it->second;
}

AssembleResult
error_at(int line_number, const std::string& message)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "line %d: %s", line_number,
                  message.c_str());
    return AssembleResult{std::nullopt, buf};
}

}  // namespace

AssembleResult
assemble(const std::string& source)
{
    struct PendingJump
    {
        std::size_t index;
        std::string label;
        int line;
    };

    std::vector<Instruction> code;
    std::map<std::string, std::uint32_t> labels;
    std::vector<PendingJump> pending;
    std::uint32_t scratch_bytes = kDefaultScratchBytes;
    std::uint32_t max_iters = kDefaultMaxIters;
    std::uint32_t max_spawn_depth = 0;

    std::istringstream stream(source);
    std::string line;
    int line_number = 0;
    while (std::getline(stream, line)) {
        line_number++;
        auto tokens = tokenize(line);
        if (tokens.empty()) {
            continue;
        }
        // Label definitions: "name:" alone on a line.
        if (tokens.size() == 1 && tokens[0].back() == ':') {
            const std::string name =
                tokens[0].substr(0, tokens[0].size() - 1);
            if (labels.count(name)) {
                return error_at(line_number,
                                "duplicate label '" + name + "'");
            }
            labels[name] = static_cast<std::uint32_t>(code.size());
            continue;
        }

        const std::string& mnemonic = tokens[0];
        const auto need = [&](std::size_t n) {
            return tokens.size() == n + 1;
        };
        const auto operand = [&](std::size_t i, Operand* out) {
            return parse_operand(tokens[i], out);
        };

        if (mnemonic == ".scratch" || mnemonic == ".max_iters" ||
            mnemonic == ".max_spawn_depth") {
            std::uint64_t value = 0;
            if (!need(1) || !parse_u64(tokens[1], &value)) {
                return error_at(line_number, "directive needs a number");
            }
            if (mnemonic == ".scratch") {
                scratch_bytes = static_cast<std::uint32_t>(value);
            } else if (mnemonic == ".max_iters") {
                max_iters = static_cast<std::uint32_t>(value);
            } else {
                max_spawn_depth = static_cast<std::uint32_t>(value);
            }
            continue;
        }
        if (mnemonic == "LOAD") {
            std::uint64_t len = 0;
            if (!need(1) || !parse_u64(tokens[1], &len)) {
                return error_at(line_number, "LOAD needs a length");
            }
            code.push_back({.op = Opcode::kLoad, .src1 = imm(len)});
            continue;
        }
        if (mnemonic == "STORE") {
            std::uint64_t mem_off = 0;
            std::uint64_t data_off = 0;
            std::uint64_t len = 0;
            if (!need(3) || !parse_u64(tokens[1], &mem_off) ||
                !parse_u64(tokens[2], &data_off) ||
                !parse_u64(tokens[3], &len)) {
                return error_at(line_number,
                                "STORE needs mem_off data_off len");
            }
            code.push_back({.op = Opcode::kStore, .dst = imm(mem_off),
                            .src1 = imm(data_off), .src2 = imm(len)});
            continue;
        }
        if (const auto alu = parse_alu(mnemonic)) {
            Instruction insn{.op = *alu};
            if (!need(3) || !operand(1, &insn.dst) ||
                !operand(2, &insn.src1) || !operand(3, &insn.src2)) {
                return error_at(line_number, "ALU needs dst a b");
            }
            code.push_back(insn);
            continue;
        }
        if (mnemonic == "NOT" || mnemonic == "MOVE") {
            Instruction insn{.op = mnemonic == "NOT" ? Opcode::kNot
                                                     : Opcode::kMove};
            if (!need(2) || !operand(1, &insn.dst) ||
                !operand(2, &insn.src1)) {
                return error_at(line_number, "needs dst src");
            }
            code.push_back(insn);
            continue;
        }
        if (mnemonic == "COMPARE") {
            Instruction insn{.op = Opcode::kCompare};
            if (!need(2) || !operand(1, &insn.src1) ||
                !operand(2, &insn.src2)) {
                return error_at(line_number, "COMPARE needs a b");
            }
            code.push_back(insn);
            continue;
        }
        if (const auto cond = parse_jump_cond(mnemonic)) {
            if (!need(1)) {
                return error_at(line_number, "jump needs a label");
            }
            pending.push_back({code.size(), tokens[1], line_number});
            code.push_back({.op = Opcode::kJump, .cond = *cond});
            continue;
        }
        if (mnemonic == "CAS") {
            std::uint64_t mem_off = 0;
            Instruction insn{.op = Opcode::kCas};
            if (!need(3) || !parse_u64(tokens[1], &mem_off) ||
                !operand(2, &insn.src1) || !operand(3, &insn.src2)) {
                return error_at(line_number,
                                "CAS needs mem_off expected desired");
            }
            insn.dst = imm(mem_off);
            code.push_back(insn);
            continue;
        }
        if (mnemonic == "RETURN") {
            code.push_back({.op = Opcode::kReturn});
            continue;
        }
        if (mnemonic == "NEXT_ITER") {
            code.push_back({.op = Opcode::kNextIter});
            continue;
        }
        if (mnemonic == "JOIN") {
            code.push_back({.op = Opcode::kJoin});
            continue;
        }
        if (mnemonic == "SPAWN") {
            // SPAWN sp[arg_off:arg_len], <start-ptr operand>
            Instruction insn{.op = Opcode::kSpawn};
            if (!need(2) || !operand(1, &insn.dst) ||
                !operand(2, &insn.src1)) {
                return error_at(line_number,
                                "SPAWN needs sp[off:len] start_ptr");
            }
            code.push_back(insn);
            continue;
        }
        if (mnemonic == "REDUCE") {
            // REDUCE acc_off, lanes, <ADD|AND|OR|XOR|MIN|MAX>
            std::uint64_t acc_off = 0;
            std::uint64_t lanes = 0;
            ReduceOp op = ReduceOp::kAdd;
            if (!need(3) || !parse_u64(tokens[1], &acc_off) ||
                !parse_u64(tokens[2], &lanes) ||
                !reduce_op_from_name(tokens[3].c_str(), &op)) {
                return error_at(line_number,
                                "REDUCE needs acc_off lanes op-name");
            }
            code.push_back({.op = Opcode::kReduce, .dst = imm(acc_off),
                            .src1 = imm(lanes),
                            .src2 = imm(static_cast<std::uint64_t>(op))});
            continue;
        }
        return error_at(line_number,
                        "unknown mnemonic '" + mnemonic + "'");
    }

    for (const PendingJump& jump : pending) {
        const auto it = labels.find(jump.label);
        if (it == labels.end()) {
            return error_at(jump.line,
                            "undefined label '" + jump.label + "'");
        }
        code[jump.index].target = it->second;
    }
    return AssembleResult{
        Program(std::move(code), scratch_bytes, max_iters,
                max_spawn_depth),
        ""};
}

}  // namespace pulse::isa
