#include "isa/traversal.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::isa {

namespace {

TraversalOutcome
run_traversal_impl(const Program& program, VirtAddr start_ptr,
                   const std::uint8_t* init_scratch,
                   std::size_t init_len, const MemoryHooks& hooks,
                   std::uint32_t max_iters)
{
    PULSE_ASSERT(program.load_bytes() == 0 ||
                     static_cast<bool>(hooks.load),
                 "program LOADs but no load hook supplied");
    if (max_iters == 0) {
        max_iters = program.max_iters();
    }

    Workspace workspace;
    workspace.configure(program);
    workspace.cur_ptr = start_ptr;
    std::copy_n(init_scratch,
                std::min(init_len, workspace.scratch.size()),
                workspace.scratch.begin());

    TraversalOutcome outcome;
    const std::uint32_t load_bytes = program.load_bytes();

    while (outcome.iterations < max_iters) {
        const VirtAddr iter_ptr = workspace.cur_ptr;
        if (load_bytes > 0) {
            if (iter_ptr == kNullAddr) {
                // Null-page semantics: loading at the null pointer
                // yields zeros so programs can test cur_ptr == 0 as a
                // termination condition (e.g. map lower_bound).
                std::fill_n(workspace.data.begin(), load_bytes, 0);
            } else if (!hooks.load(iter_ptr, load_bytes,
                                   workspace.data.data())) {
                outcome.status = TraversalStatus::kMemFault;
                break;
            }
        }
        CasFn cas;
        if (hooks.cas) {
            cas = [&hooks, iter_ptr](std::uint64_t mem_off,
                                     std::uint64_t expected,
                                     std::uint64_t desired) {
                return hooks.cas(iter_ptr + mem_off, expected,
                                 desired);
            };
        }
        IterationResult iter = run_iteration(program, workspace, cas);
        outcome.iterations++;
        outcome.instructions += iter.instructions_executed;

        bool store_fault = false;
        for (const PendingStore& st : iter.stores) {
            PULSE_ASSERT(static_cast<bool>(hooks.store),
                         "program STOREs but no store hook");
            if (!hooks.store(iter_ptr + st.mem_offset, st.length,
                             workspace.data.data() + st.data_offset)) {
                store_fault = true;
                break;
            }
        }
        if (store_fault) {
            outcome.status = TraversalStatus::kMemFault;
            break;
        }
        if (!iter.spawns.empty()) {
            // This is a single-chain execution site with no fork path
            // (the engine offloads forking programs; the client
            // fallback cannot coordinate a join). Same convention as
            // kCas without a hook.
            outcome.status = TraversalStatus::kExecFault;
            outcome.fault = ExecFault::kIllegalInstruction;
            break;
        }
        if (iter.end == IterEnd::kFault) {
            outcome.status = TraversalStatus::kExecFault;
            outcome.fault = iter.fault;
            break;
        }
        if (iter.end == IterEnd::kReturn ||
            iter.end == IterEnd::kJoin) {
            // A JOIN that spawned nothing completes immediately.
            outcome.status = TraversalStatus::kDone;
            break;
        }
        // NEXT_ITER: follow cur_ptr into the next iteration, unless the
        // iteration budget is exhausted (section 3.1: the CPU node can
        // resume from final_ptr + scratch_pad).
        if (outcome.iterations == max_iters) {
            outcome.status = TraversalStatus::kMaxIter;
            break;
        }
    }
    outcome.final_ptr = workspace.cur_ptr;
    outcome.scratch = std::move(workspace.scratch);
    return outcome;
}

}  // namespace

TraversalOutcome
run_traversal(const Program& program, VirtAddr start_ptr,
              const std::vector<std::uint8_t>& init_scratch,
              const MemoryHooks& hooks, std::uint32_t max_iters)
{
    return run_traversal_impl(program, start_ptr, init_scratch.data(),
                              init_scratch.size(), hooks, max_iters);
}

TraversalOutcome
run_traversal(const Program& program, VirtAddr start_ptr,
              const ScratchBuffer& init_scratch,
              const MemoryHooks& hooks, std::uint32_t max_iters)
{
    return run_traversal_impl(program, start_ptr, init_scratch.data(),
                              init_scratch.size(), hooks, max_iters);
}

}  // namespace pulse::isa
