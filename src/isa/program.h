/**
 * @file
 * Program container and verifier for pulse ISA traversal code.
 *
 * A Program is the unit the offload engine ships to accelerators: the
 * per-iteration instruction sequence plus execution limits (scratch_pad
 * size, iteration cap). verify() performs the structural checks that
 * make accelerator execution statically boundable (section 4.1):
 * forward-only jumps, one LOAD at instruction 0, every operand offset
 * within its register vector, and every path terminated by RETURN or
 * NEXT_ITER.
 */
#ifndef PULSE_ISA_PROGRAM_H
#define PULSE_ISA_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace pulse::isa {

/** A verified-or-not pulse traversal program. */
class Program
{
  public:
    Program() = default;

    /**
     * Build from raw instructions.
     * @param code         per-iteration instruction sequence
     * @param scratch_bytes scratch_pad size the program assumes
     * @param max_iters    MAX_ITER for this program
     */
    Program(std::vector<Instruction> code, std::uint32_t scratch_bytes,
            std::uint32_t max_iters,
            std::uint32_t max_spawn_depth = 0);

    const std::vector<Instruction>& code() const { return code_; }
    std::uint32_t scratch_bytes() const { return scratch_bytes_; }
    std::uint32_t max_iters() const { return max_iters_; }

    /**
     * Fork-depth budget: a traversal at depth d may SPAWN only while
     * d < max_spawn_depth. 0 (the default) keeps SPAWN illegal — the
     * sequential ISA — and encodes bit-identically to programs built
     * before the fork/join extension existed.
     */
    std::uint32_t max_spawn_depth() const { return max_spawn_depth_; }

    /** Number of instructions. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(code_.size());
    }

    /**
     * Bytes the iteration's aggregated LOAD fetches (0 when the program
     * has no LOAD — e.g. a pure compute epilogue).
     */
    std::uint32_t load_bytes() const;

    /**
     * Structural verification; returns true when the program is valid
     * for accelerator execution. On failure @p error (if non-null) gets
     * a human-readable reason.
     */
    bool verify(std::string* error = nullptr) const;

    /** Disassemble to assembler text. */
    std::string disassemble() const;

    friend bool operator==(const Program&, const Program&) = default;

  private:
    std::vector<Instruction> code_;
    std::uint32_t scratch_bytes_ = kDefaultScratchBytes;
    std::uint32_t max_iters_ = kDefaultMaxIters;
    std::uint32_t max_spawn_depth_ = 0;
};

/**
 * Incremental program builder with label resolution.
 *
 * Data-structure adapters express next()/end() logic through this API;
 * labels may be referenced before they are placed (forward jumps only,
 * which verify() enforces anyway).
 */
class ProgramBuilder
{
  public:
    ProgramBuilder() = default;

    /** Aggregated load of @p bytes at cur_ptr (must be instruction 0). */
    ProgramBuilder& load(std::uint32_t bytes);

    /** Store data[data_off : +len) to mem[cur_ptr+mem_off : +len). */
    ProgramBuilder& store(std::uint32_t mem_off, std::uint32_t data_off,
                          std::uint32_t len);

    ProgramBuilder& add(Operand dst, Operand a, Operand b);
    ProgramBuilder& sub(Operand dst, Operand a, Operand b);
    ProgramBuilder& mul(Operand dst, Operand a, Operand b);
    ProgramBuilder& div(Operand dst, Operand a, Operand b);
    ProgramBuilder& band(Operand dst, Operand a, Operand b);
    ProgramBuilder& bor(Operand dst, Operand a, Operand b);
    ProgramBuilder& bnot(Operand dst, Operand a);
    ProgramBuilder& move(Operand dst, Operand src);

    /** COMPARE a, b: set flags from signed(a) - signed(b). */
    ProgramBuilder& compare(Operand a, Operand b);

    /** Conditional forward jump to @p label. */
    ProgramBuilder& jump(Cond cond, const std::string& label);
    ProgramBuilder& jump_eq(const std::string& label);
    ProgramBuilder& jump_neq(const std::string& label);
    ProgramBuilder& jump_lt(const std::string& label);
    ProgramBuilder& jump_gt(const std::string& label);
    ProgramBuilder& jump_le(const std::string& label);
    ProgramBuilder& jump_ge(const std::string& label);

    /** Unconditional forward jump (assembler sugar). */
    ProgramBuilder& jump_always(const std::string& label);

    /**
     * Extension: atomic CAS of mem[cur_ptr+mem_off] from @p expected
     * to @p desired; flags end EQ on success (supp. section B).
     */
    ProgramBuilder& cas(std::uint32_t mem_off, Operand expected,
                        Operand desired);

    ProgramBuilder& next_iter();
    ProgramBuilder& ret();

    /**
     * Fork/join extension: spawn a child traversal at @p start_ptr,
     * seeding its scratch_pad with this traversal's scratch bytes
     * [arg_off, arg_off+arg_len) at the same offsets.
     */
    ProgramBuilder& spawn(Operand start_ptr, std::uint32_t arg_off,
                          std::uint32_t arg_len);

    /** Declare the join accumulator: @p lanes 64-bit lanes at
     *  scratch_pad offset @p acc_off folded with @p op. */
    ProgramBuilder& reduce(ReduceOp op, std::uint32_t acc_off,
                           std::uint32_t lanes);

    /** Terminal for forking programs (see Opcode::kJoin). */
    ProgramBuilder& join();

    /** Override the fork-depth budget (default 0: no forking). */
    ProgramBuilder& max_spawn_depth(std::uint32_t depth);

    /** Bind @p label to the next instruction index. */
    ProgramBuilder& label(const std::string& label);

    /** Override scratch_pad size (default kDefaultScratchBytes). */
    ProgramBuilder& scratch_bytes(std::uint32_t bytes);

    /** Override MAX_ITER (default kDefaultMaxIters). */
    ProgramBuilder& max_iters(std::uint32_t iters);

    /**
     * Resolve labels and produce the program. Calls fatal() on dangling
     * labels (a programming error in the adapter, not a runtime input).
     */
    Program build() const;

  private:
    struct PendingJump
    {
        std::size_t index;
        std::string label;
    };

    ProgramBuilder& emit(Instruction instruction);

    std::vector<Instruction> code_;
    std::vector<PendingJump> pending_;
    std::vector<std::pair<std::string, std::uint32_t>> labels_;
    std::uint32_t scratch_bytes_ = kDefaultScratchBytes;
    std::uint32_t max_iters_ = kDefaultMaxIters;
    std::uint32_t max_spawn_depth_ = 0;
};

}  // namespace pulse::isa

#endif  // PULSE_ISA_PROGRAM_H
