/**
 * @file
 * Static analysis of pulse programs (the offload engine's cost model,
 * paper section 4.1).
 *
 * Because jumps are forward-only, the per-iteration control flow is a
 * DAG and every quantity the offload decision needs is statically
 * computable:
 *   - N: the worst-case number of logic instructions per iteration
 *     (longest path through the DAG, excluding LOAD/STORE),
 *   - the aggregated load footprint (max byte referenced relative to
 *     cur_ptr; the builder's LOAD length must cover it),
 *   - the scratch_pad footprint,
 *   - t_c = N * t_i and eta = t_c / t_d for the offload threshold test
 *     t_c <= eta_threshold * t_d (section 4.2.2's pipeline-balance
 *     condition).
 */
#ifndef PULSE_ISA_ANALYSIS_H
#define PULSE_ISA_ANALYSIS_H

#include <cstdint>
#include <string>

#include "common/units.h"
#include "isa/program.h"

namespace pulse::isa {

/** Result of analyzing a program. */
struct ProgramAnalysis
{
    bool valid = false;       ///< verify() passed
    std::string error;        ///< reason when !valid

    std::uint32_t num_instructions = 0;   ///< static count (incl. LOAD)
    std::uint32_t worst_path_instructions = 0;  ///< N: longest logic path
    std::uint32_t load_bytes = 0;         ///< declared LOAD footprint
    std::uint32_t max_data_ref = 0;       ///< max data byte referenced
    std::uint32_t scratch_footprint = 0;  ///< max scratch byte referenced
    bool has_store = false;
    bool has_div = false;
    bool has_cas = false;  ///< uses the atomic extension

    /**
     * Fork/join extension (DAG traversals). A forking program's
     * termination argument extends the chain case: each sub-traversal
     * is itself a bounded chain (max_iters), the spawn depth is capped
     * by max_spawn_depth <= 7, the per-iteration fan-out is capped by
     * the static spawn-site count (<= 8, forward-only jumps execute
     * each site at most once per iteration), and the engine's
     * per-root fork-node guard bounds the total DAG size. eta is
     * computed per sub-traversal — every branch runs the same
     * iteration logic, so the chain cost model applies unchanged.
     */
    bool has_spawn = false;          ///< program forks sub-traversals
    std::uint32_t spawn_sites = 0;   ///< static SPAWN count (<= 8)
    ReduceOp reduce_op = ReduceOp::kAdd;  ///< join accumulator op
    std::uint32_t reduce_offset = 0;      ///< accumulator scratch offset
    std::uint32_t reduce_lanes = 0;       ///< 8-byte lanes (0 = no fork)
};

/** Analyze @p program (includes verification). */
ProgramAnalysis analyze(const Program& program);

/**
 * Offload cost model: compute time for the worst-case iteration given
 * the accelerator's per-instruction logic time @p t_i.
 */
Time compute_time(const ProgramAnalysis& analysis, Time t_i);

/**
 * eta = t_c / t_d for accelerator memory-pipeline time @p t_d per
 * iteration (paper Table 2 reports this per workload).
 */
double compute_eta(const ProgramAnalysis& analysis, Time t_i, Time t_d);

}  // namespace pulse::isa

#endif  // PULSE_ISA_ANALYSIS_H
