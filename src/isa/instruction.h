/**
 * @file
 * The pulse instruction set (paper Table 1, section 4.1).
 *
 * pulse adapts a restricted RISC subset with exactly the operation
 * classes a pointer traversal needs:
 *   - Memory:   LOAD (one aggregated load at the top of each iteration,
 *               up to 256 B at cur_ptr), STORE (write-back into the
 *               current node).
 *   - ALU:      ADD SUB MUL DIV AND OR NOT.
 *   - Register: MOVE.
 *   - Branch:   COMPARE + JUMP_{EQ,NEQ,LT,GT,LE,GE}; jumps may only go
 *               *forward* — the only backward edge is the implicit one
 *               created by NEXT_ITER, which restarts the iteration. This
 *               is what makes per-iteration execution time statically
 *               bounded (no unbounded loops, section 3.1).
 *   - Terminal: RETURN (finish, yield scratch_pad), NEXT_ITER.
 *
 * Operands address one of three storage spaces in the workspace: the
 * cur_ptr register, the scratch_pad register vector, and the data
 * register vector holding the bytes LOADed this iteration. All offsets
 * are static, so the verifier can bounds-check every access at offload
 * time (section 4.1's static analysis).
 */
#ifndef PULSE_ISA_INSTRUCTION_H
#define PULSE_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace pulse::isa {

/** Maximum bytes a single aggregated LOAD may fetch (paper: 256 B). */
inline constexpr std::uint32_t kMaxLoadBytes = 256;

/** Default scratch_pad size (paper: 4 KB, configurable). */
inline constexpr std::uint32_t kDefaultScratchBytes = 4096;

/** Default per-request iteration cap (MAX_ITER, section 3.1). */
inline constexpr std::uint32_t kDefaultMaxIters = 512;

/**
 * Fork/join extension limits (ROADMAP "Parallel intra-request
 * traversals"). A forking program may contain at most
 * kMaxSpawnsPerVisit SPAWN instructions — jumps are forward-only, so
 * one iteration executes each SPAWN at most once, which statically
 * bounds the records a visit can emit to the packet SpawnList's
 * capacity. kSpawnArgBytes bounds the argument window a SPAWN copies
 * from the parent's scratch_pad into the child's (same offsets, so
 * scratch-layout constants stay uniform across the DAG).
 */
inline constexpr std::uint32_t kMaxSpawnsPerVisit = 8;
inline constexpr std::uint32_t kSpawnArgBytes = 32;

/** Maximum 64-bit accumulator lanes a REDUCE may declare. */
inline constexpr std::uint32_t kMaxReduceLanes = 8;

/** Hard ceiling on Program::max_spawn_depth (u8 in the wire header). */
inline constexpr std::uint32_t kMaxSpawnDepthLimit = 7;

/** Per-root cap on total forked sub-traversals (DAG termination: a
 *  request terminates iff every spawn subtree does, and the subtree
 *  node count is bounded by this guard — the dynamic analogue of the
 *  kGlobalIterationGuard on chains). */
inline constexpr std::uint32_t kForkNodeGuard = 4096;

/** Operation codes. */
enum class Opcode : std::uint8_t {
    kLoad,      ///< data[0:len) = mem[cur_ptr : cur_ptr+len)
    kStore,     ///< mem[cur_ptr+off : +len) = data[off : off+len)
    kAdd,
    kSub,
    kMul,
    kDiv,
    kAnd,
    kOr,
    kNot,
    kMove,
    kCompare,   ///< set flags from (src1 - src2), signed 64-bit
    kJump,      ///< conditional forward jump using the flags
    kReturn,    ///< terminate traversal; scratch_pad is the result
    kNextIter,  ///< commit cur_ptr and start the next iteration
    /**
     * Extension (supplementary section B, "enabling near-memory
     * synchronization"): atomic compare-and-swap of the 64-bit word
     * at mem[cur_ptr + dst] — if it equals src1, write src2. Flags
     * are set EQ on success, NEQ on failure, so programs retry with
     * JUMP_NEQ. Not part of the paper's Table 1; execution sites that
     * lack an atomic path fault on it.
     */
    kCas,
    /**
     * Fork/join extension (ROADMAP "Parallel intra-request
     * traversals"; the Tiara/emu-style migratory recursive-spawn
     * idiom). SPAWN emits a sub-traversal record: src1 is the child's
     * start pointer (a null pointer skips the spawn — the conditional-
     * fork idiom, mirroring the null-page LOAD semantics), and dst is
     * a scratch_pad window [offset, offset+width) whose bytes are
     * captured *at spawn time* and placed at the same offsets in the
     * child's otherwise-zeroed scratch_pad. The child executes the
     * same program from the spawned pointer, one fork level deeper;
     * spawning at max_spawn_depth faults.
     */
    kSpawn,
    /**
     * Declares the program's commutative join accumulator: dst(imm) is
     * the scratch_pad byte offset of the accumulator lanes, src1(imm)
     * the lane count (64-bit lanes), src2(imm) the ReduceOp. When a
     * forked child completes, each of its accumulator lanes is folded
     * into the parent's with the declared operator. Commutativity +
     * associativity make the join result independent of branch
     * completion order, which is what lets the differential oracle
     * gate forked traversals exactly. At runtime REDUCE is a no-op
     * (the declaration is consumed by static analysis).
     */
    kReduce,
    /**
     * Terminal for forking programs: ends this traversal's own chain
     * and completes the request once every spawned subtree has
     * completed and reduced. A JOIN with no outstanding branches
     * completes immediately (how fork leaves terminate).
     */
    kJoin,
};

/**
 * Commutative + associative fold operators for kReduce. The identity
 * element seeds engine-side accumulators, so partial folds compose in
 * any completion order. MIN/MAX are unsigned (matching the ISA's
 * zero-extended operand reads).
 */
enum class ReduceOp : std::uint8_t {
    kAdd,
    kAnd,
    kOr,
    kXor,
    kMin,
    kMax,
};

/** Identity element of @p op (the accumulator's initial lane value). */
std::uint64_t reduce_identity(ReduceOp op);

/** Fold @p value into @p acc with @p op. */
std::uint64_t reduce_apply(ReduceOp op, std::uint64_t acc,
                           std::uint64_t value);

/** Mnemonic for @p op ("ADD", "AND", ...). */
const char* reduce_op_name(ReduceOp op);

/** Parse a reduce-op mnemonic (case-sensitive); false when unknown. */
bool reduce_op_from_name(const char* name, ReduceOp* out);

/** Branch conditions for kJump. */
enum class Cond : std::uint8_t {
    kAlways,  ///< assembler sugar: unconditional forward jump
    kEq,
    kNeq,
    kLt,
    kGt,
    kLe,
    kGe,
};

/** Operand storage spaces. */
enum class OperandKind : std::uint8_t {
    kNone,     ///< unused operand slot
    kImm,      ///< 64-bit immediate
    kCurPtr,   ///< the cur_ptr register
    kScratch,  ///< scratch_pad[offset : offset+width)
    kData,     ///< data[offset : offset+width)
};

/**
 * One operand. Register-vector operands carry a static byte offset and
 * an access width; scalar accesses (ALU/COMPARE/scalar MOVE) use widths
 * of 1, 2, 4 or 8 bytes, read zero-extended to 64 bits and written
 * truncating. MOVE additionally supports *register-vector* transfers of
 * up to 256 bytes between the scratch_pad and data vectors (the
 * workspace is register-vector storage, section 4.2.1), which is how an
 * iterator returns a whole value object in one instruction.
 */
struct Operand
{
    OperandKind kind = OperandKind::kNone;
    std::uint16_t width = 8;   // bytes; meaningful for kScratch/kData
    std::uint64_t value = 0;   // immediate value, or byte offset

    friend bool operator==(const Operand&, const Operand&) = default;
};

/** Operand constructors (kept terse: they appear in every program). */
constexpr Operand
imm(std::uint64_t value)
{
    return Operand{OperandKind::kImm, 8, value};
}

/** scratch_pad[offset : offset+width). */
constexpr Operand
sp(std::uint32_t offset, std::uint16_t width = 8)
{
    return Operand{OperandKind::kScratch, width, offset};
}

/** data[offset : offset+width). */
constexpr Operand
dat(std::uint32_t offset, std::uint16_t width = 8)
{
    return Operand{OperandKind::kData, width, offset};
}

/** The cur_ptr register. */
constexpr Operand
cur()
{
    return Operand{OperandKind::kCurPtr, 8, 0};
}

/** No operand. */
constexpr Operand
none()
{
    return Operand{OperandKind::kNone, 0, 0};
}

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::kReturn;
    Cond cond = Cond::kAlways;   // for kJump
    std::uint32_t target = 0;    // jump target (instruction index)
    Operand dst;
    Operand src1;
    Operand src2;

    friend bool operator==(const Instruction&,
                           const Instruction&) = default;
};

/** Human-readable opcode mnemonic. */
const char* opcode_name(Opcode op);

/** Human-readable condition suffix ("EQ", ...). */
const char* cond_name(Cond cond);

/** Render one operand in assembler syntax. */
std::string operand_to_string(const Operand& operand);

}  // namespace pulse::isa

#endif  // PULSE_ISA_INSTRUCTION_H
