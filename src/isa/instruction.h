/**
 * @file
 * The pulse instruction set (paper Table 1, section 4.1).
 *
 * pulse adapts a restricted RISC subset with exactly the operation
 * classes a pointer traversal needs:
 *   - Memory:   LOAD (one aggregated load at the top of each iteration,
 *               up to 256 B at cur_ptr), STORE (write-back into the
 *               current node).
 *   - ALU:      ADD SUB MUL DIV AND OR NOT.
 *   - Register: MOVE.
 *   - Branch:   COMPARE + JUMP_{EQ,NEQ,LT,GT,LE,GE}; jumps may only go
 *               *forward* — the only backward edge is the implicit one
 *               created by NEXT_ITER, which restarts the iteration. This
 *               is what makes per-iteration execution time statically
 *               bounded (no unbounded loops, section 3.1).
 *   - Terminal: RETURN (finish, yield scratch_pad), NEXT_ITER.
 *
 * Operands address one of three storage spaces in the workspace: the
 * cur_ptr register, the scratch_pad register vector, and the data
 * register vector holding the bytes LOADed this iteration. All offsets
 * are static, so the verifier can bounds-check every access at offload
 * time (section 4.1's static analysis).
 */
#ifndef PULSE_ISA_INSTRUCTION_H
#define PULSE_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace pulse::isa {

/** Maximum bytes a single aggregated LOAD may fetch (paper: 256 B). */
inline constexpr std::uint32_t kMaxLoadBytes = 256;

/** Default scratch_pad size (paper: 4 KB, configurable). */
inline constexpr std::uint32_t kDefaultScratchBytes = 4096;

/** Default per-request iteration cap (MAX_ITER, section 3.1). */
inline constexpr std::uint32_t kDefaultMaxIters = 512;

/** Operation codes. */
enum class Opcode : std::uint8_t {
    kLoad,      ///< data[0:len) = mem[cur_ptr : cur_ptr+len)
    kStore,     ///< mem[cur_ptr+off : +len) = data[off : off+len)
    kAdd,
    kSub,
    kMul,
    kDiv,
    kAnd,
    kOr,
    kNot,
    kMove,
    kCompare,   ///< set flags from (src1 - src2), signed 64-bit
    kJump,      ///< conditional forward jump using the flags
    kReturn,    ///< terminate traversal; scratch_pad is the result
    kNextIter,  ///< commit cur_ptr and start the next iteration
    /**
     * Extension (supplementary section B, "enabling near-memory
     * synchronization"): atomic compare-and-swap of the 64-bit word
     * at mem[cur_ptr + dst] — if it equals src1, write src2. Flags
     * are set EQ on success, NEQ on failure, so programs retry with
     * JUMP_NEQ. Not part of the paper's Table 1; execution sites that
     * lack an atomic path fault on it.
     */
    kCas,
};

/** Branch conditions for kJump. */
enum class Cond : std::uint8_t {
    kAlways,  ///< assembler sugar: unconditional forward jump
    kEq,
    kNeq,
    kLt,
    kGt,
    kLe,
    kGe,
};

/** Operand storage spaces. */
enum class OperandKind : std::uint8_t {
    kNone,     ///< unused operand slot
    kImm,      ///< 64-bit immediate
    kCurPtr,   ///< the cur_ptr register
    kScratch,  ///< scratch_pad[offset : offset+width)
    kData,     ///< data[offset : offset+width)
};

/**
 * One operand. Register-vector operands carry a static byte offset and
 * an access width; scalar accesses (ALU/COMPARE/scalar MOVE) use widths
 * of 1, 2, 4 or 8 bytes, read zero-extended to 64 bits and written
 * truncating. MOVE additionally supports *register-vector* transfers of
 * up to 256 bytes between the scratch_pad and data vectors (the
 * workspace is register-vector storage, section 4.2.1), which is how an
 * iterator returns a whole value object in one instruction.
 */
struct Operand
{
    OperandKind kind = OperandKind::kNone;
    std::uint16_t width = 8;   // bytes; meaningful for kScratch/kData
    std::uint64_t value = 0;   // immediate value, or byte offset

    friend bool operator==(const Operand&, const Operand&) = default;
};

/** Operand constructors (kept terse: they appear in every program). */
constexpr Operand
imm(std::uint64_t value)
{
    return Operand{OperandKind::kImm, 8, value};
}

/** scratch_pad[offset : offset+width). */
constexpr Operand
sp(std::uint32_t offset, std::uint16_t width = 8)
{
    return Operand{OperandKind::kScratch, width, offset};
}

/** data[offset : offset+width). */
constexpr Operand
dat(std::uint32_t offset, std::uint16_t width = 8)
{
    return Operand{OperandKind::kData, width, offset};
}

/** The cur_ptr register. */
constexpr Operand
cur()
{
    return Operand{OperandKind::kCurPtr, 8, 0};
}

/** No operand. */
constexpr Operand
none()
{
    return Operand{OperandKind::kNone, 0, 0};
}

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::kReturn;
    Cond cond = Cond::kAlways;   // for kJump
    std::uint32_t target = 0;    // jump target (instruction index)
    Operand dst;
    Operand src1;
    Operand src2;

    friend bool operator==(const Instruction&,
                           const Instruction&) = default;
};

/** Human-readable opcode mnemonic. */
const char* opcode_name(Opcode op);

/** Human-readable condition suffix ("EQ", ...). */
const char* cond_name(Cond cond);

/** Render one operand in assembler syntax. */
std::string operand_to_string(const Operand& operand);

}  // namespace pulse::isa

#endif  // PULSE_ISA_INSTRUCTION_H
