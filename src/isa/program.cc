#include "isa/program.h"

#include <cstdio>

#include "common/logging.h"

namespace pulse::isa {
namespace {

bool
is_alu(Opcode op)
{
    switch (op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kAnd:
      case Opcode::kOr:
        return true;
      default:
        return false;
    }
}

/** Is @p operand a legal *destination* (writable register storage)? */
bool
writable(const Operand& operand)
{
    return operand.kind == OperandKind::kCurPtr ||
           operand.kind == OperandKind::kScratch ||
           operand.kind == OperandKind::kData;
}

/** Is @p operand a legal *source*? */
bool
readable(const Operand& operand)
{
    return operand.kind != OperandKind::kNone;
}

bool
scalar_width(const Operand& operand)
{
    if (operand.kind != OperandKind::kScratch &&
        operand.kind != OperandKind::kData) {
        return true;
    }
    return operand.width == 1 || operand.width == 2 ||
           operand.width == 4 || operand.width == 8;
}

bool
is_vector(const Operand& operand)
{
    return operand.kind == OperandKind::kScratch ||
           operand.kind == OperandKind::kData;
}

/** MOVE may be a register-vector transfer (both sides vectors of the
 *  same width, up to 256 B); every other access is scalar (1/2/4/8 B,
 *  zero-extending on read, truncating on write). SPAWN's dst is an
 *  argument *window* (byte-copied, any width up to kSpawnArgBytes). */
bool
valid_width(const Instruction& insn, const Operand& operand)
{
    const bool wide_move =
        insn.op == Opcode::kMove && is_vector(insn.dst) &&
        is_vector(insn.src1) &&
        (insn.dst.width > 8 || insn.src1.width > 8);
    if (wide_move) {
        return operand.width >= 1 && operand.width <= kMaxLoadBytes &&
               insn.dst.width == insn.src1.width;
    }
    if (insn.op == Opcode::kSpawn && &operand == &insn.dst) {
        return operand.width >= 1 && operand.width <= kSpawnArgBytes;
    }
    return scalar_width(operand);
}

bool
fail(std::string* error, const std::string& message)
{
    if (error != nullptr) {
        *error = message;
    }
    return false;
}

}  // namespace

Program::Program(std::vector<Instruction> code,
                 std::uint32_t scratch_bytes, std::uint32_t max_iters,
                 std::uint32_t max_spawn_depth)
    : code_(std::move(code)), scratch_bytes_(scratch_bytes),
      max_iters_(max_iters), max_spawn_depth_(max_spawn_depth)
{
}

std::uint32_t
Program::load_bytes() const
{
    if (!code_.empty() && code_.front().op == Opcode::kLoad) {
        return static_cast<std::uint32_t>(code_.front().src1.value);
    }
    return 0;
}

bool
Program::verify(std::string* error) const
{
    if (code_.empty()) {
        return fail(error, "empty program");
    }
    char buf[160];
    std::uint32_t spawn_sites = 0;
    std::uint32_t reduce_sites = 0;
    bool has_join = false;
    bool has_return = false;
    bool has_store = false;
    for (std::size_t i = 0; i < code_.size(); i++) {
        const Instruction& insn = code_[i];
        const auto where = [&](const char* what) {
            std::snprintf(buf, sizeof(buf), "instruction %zu (%s): %s", i,
                          opcode_name(insn.op), what);
            return std::string(buf);
        };

        // Operand widths and offsets are static; bound them all here so
        // the accelerator never needs runtime range checks.
        for (const Operand* operand : {&insn.dst, &insn.src1, &insn.src2}) {
            if (!valid_width(insn, *operand)) {
                return fail(error, where("bad operand width"));
            }
            if (operand->kind == OperandKind::kScratch &&
                operand->value + operand->width > scratch_bytes_) {
                return fail(error, where("scratch_pad offset out of range"));
            }
            if (operand->kind == OperandKind::kData &&
                operand->value + operand->width > kMaxLoadBytes) {
                return fail(error, where("data offset out of range"));
            }
        }

        switch (insn.op) {
          case Opcode::kLoad:
            if (i != 0) {
                return fail(error,
                            where("LOAD allowed only at instruction 0 "
                                  "(one aggregated load per iteration)"));
            }
            if (insn.src1.kind != OperandKind::kImm ||
                insn.src1.value == 0 || insn.src1.value > kMaxLoadBytes) {
                return fail(error, where("LOAD length must be an "
                                         "immediate in [1, 256]"));
            }
            break;
          case Opcode::kStore: {
            if (insn.dst.kind != OperandKind::kImm ||
                insn.src1.kind != OperandKind::kImm ||
                insn.src2.kind != OperandKind::kImm) {
                return fail(error, where("STORE operands must be "
                                         "immediates (off, off, len)"));
            }
            const auto data_off = insn.src1.value;
            const auto len = insn.src2.value;
            if (len == 0 || data_off + len > kMaxLoadBytes) {
                return fail(error, where("STORE data span out of range"));
            }
            has_store = true;
            break;
          }
          case Opcode::kAdd:
          case Opcode::kSub:
          case Opcode::kMul:
          case Opcode::kDiv:
          case Opcode::kAnd:
          case Opcode::kOr:
            if (!writable(insn.dst) || !readable(insn.src1) ||
                !readable(insn.src2)) {
                return fail(error, where("ALU needs writable dst and two "
                                         "readable sources"));
            }
            break;
          case Opcode::kNot:
          case Opcode::kMove:
            if (!writable(insn.dst) || !readable(insn.src1)) {
                return fail(error, where("needs writable dst and a "
                                         "readable source"));
            }
            break;
          case Opcode::kCompare:
            if (!readable(insn.src1) || !readable(insn.src2)) {
                return fail(error, where("COMPARE needs two sources"));
            }
            break;
          case Opcode::kJump:
            // Backward jumps would create unbounded loops within an
            // iteration; the ISA forbids them (section 3.1).
            if (insn.target <= i) {
                return fail(error, where("backward or self jump"));
            }
            if (insn.target >= code_.size()) {
                return fail(error, where("jump past end of program"));
            }
            break;
          case Opcode::kReturn:
            has_return = true;
            break;
          case Opcode::kNextIter:
            break;
          case Opcode::kSpawn:
            spawn_sites++;
            if (!readable(insn.src1) || insn.src1.width != 8 ||
                insn.src1.kind == OperandKind::kImm) {
                return fail(error, where("SPAWN start pointer must be "
                                         "an 8-byte register read"));
            }
            if (insn.dst.kind != OperandKind::kScratch ||
                insn.dst.width == 0 ||
                insn.dst.width > kSpawnArgBytes) {
                return fail(error,
                            where("SPAWN argument window must be a "
                                  "scratch_pad span of at most 32 B"));
            }
            break;
          case Opcode::kReduce: {
            reduce_sites++;
            if (insn.dst.kind != OperandKind::kImm ||
                insn.src1.kind != OperandKind::kImm ||
                insn.src2.kind != OperandKind::kImm) {
                return fail(error, where("REDUCE operands must be "
                                         "immediates (off, lanes, op)"));
            }
            const auto lanes = insn.src1.value;
            if (lanes == 0 || lanes > 8) {
                return fail(error,
                            where("REDUCE lane count must be in [1, 8]"));
            }
            if (insn.dst.value + 8 * lanes > scratch_bytes_) {
                return fail(error, where("REDUCE accumulator span out "
                                         "of scratch_pad range"));
            }
            if (insn.src2.value > static_cast<std::uint64_t>(
                                      ReduceOp::kMax)) {
                return fail(error, where("unknown REDUCE operator"));
            }
            break;
          }
          case Opcode::kJoin:
            has_join = true;
            break;
          case Opcode::kCas:
            if (insn.dst.kind != OperandKind::kImm ||
                insn.dst.value + 8 > kMaxLoadBytes) {
                return fail(error, where("CAS offset must be an "
                                         "immediate within the load "
                                         "vicinity"));
            }
            if (!readable(insn.src1) || !readable(insn.src2)) {
                return fail(error, where("CAS needs expected and "
                                         "desired sources"));
            }
            has_store = true;
            break;
        }
        (void)is_alu;
    }

    // Fork/join structural rules. A forking program terminates through
    // the join/reduce rendezvous: RETURN would complete the request
    // while children are still in flight, so it is forbidden; exactly
    // one REDUCE names the accumulator the engine folds children into;
    // and memory effects are read-only, which is what makes the DAG's
    // result independent of branch completion order (the oracle's
    // order-insensitive gating rule, docs/TESTING.md).
    if (spawn_sites > 0) {
        if (max_spawn_depth_ == 0) {
            return fail(error, "SPAWN requires max_spawn_depth >= 1");
        }
        if (spawn_sites > kMaxSpawnsPerVisit) {
            return fail(error, "SPAWN sites exceed the per-visit "
                               "spawn-list capacity");
        }
        if (reduce_sites != 1) {
            return fail(error, "a forking program needs exactly one "
                               "REDUCE declaration");
        }
        if (!has_join) {
            return fail(error, "a forking program must terminate via "
                               "JOIN");
        }
        if (has_return) {
            return fail(error, "RETURN is illegal in a forking program "
                               "(use JOIN)");
        }
        if (has_store) {
            return fail(error, "STORE/CAS are illegal in a forking "
                               "program (forked traversals are "
                               "read-only)");
        }
    } else if (has_join || reduce_sites > 0) {
        return fail(error, "JOIN/REDUCE without any SPAWN site");
    }
    if (max_spawn_depth_ > kMaxSpawnDepthLimit) {
        return fail(error, "max_spawn_depth exceeds the wire limit");
    }
    if (max_spawn_depth_ > 0 && max_iters_ >= (1u << 24)) {
        return fail(error, "forking programs cap max_iters below 2^24 "
                           "(header packing)");
    }

    // Every fall-through path must end in a terminal instruction: the
    // last instruction must be terminal or an unconditional jump cannot
    // exist past it (it can't: verified above). Conditional fallthrough
    // off the end is a bug.
    const Opcode last = code_.back().op;
    if (last != Opcode::kReturn && last != Opcode::kNextIter &&
        last != Opcode::kJoin) {
        return fail(error, "program may fall off the end (last "
                           "instruction is not RETURN/NEXT_ITER/JOIN)");
    }
    return true;
}

std::string
Program::disassemble() const
{
    std::string out;
    char buf[192];
    for (std::size_t i = 0; i < code_.size(); i++) {
        const Instruction& insn = code_[i];
        switch (insn.op) {
          case Opcode::kLoad:
            std::snprintf(buf, sizeof(buf), "%3zu: LOAD %llu\n", i,
                          static_cast<unsigned long long>(insn.src1.value));
            break;
          case Opcode::kStore:
            std::snprintf(buf, sizeof(buf), "%3zu: STORE mem+%llu "
                          "data[%llu] len=%llu\n", i,
                          static_cast<unsigned long long>(insn.dst.value),
                          static_cast<unsigned long long>(insn.src1.value),
                          static_cast<unsigned long long>(insn.src2.value));
            break;
          case Opcode::kJump:
            std::snprintf(buf, sizeof(buf), "%3zu: JUMP_%s %u\n", i,
                          cond_name(insn.cond), insn.target);
            break;
          case Opcode::kReturn:
          case Opcode::kNextIter:
          case Opcode::kJoin:
            std::snprintf(buf, sizeof(buf), "%3zu: %s\n", i,
                          opcode_name(insn.op));
            break;
          case Opcode::kSpawn:
            std::snprintf(buf, sizeof(buf), "%3zu: SPAWN %s %s\n", i,
                          operand_to_string(insn.dst).c_str(),
                          operand_to_string(insn.src1).c_str());
            break;
          case Opcode::kReduce:
            std::snprintf(
                buf, sizeof(buf), "%3zu: REDUCE %llu %llu %s\n", i,
                static_cast<unsigned long long>(insn.dst.value),
                static_cast<unsigned long long>(insn.src1.value),
                reduce_op_name(
                    static_cast<ReduceOp>(insn.src2.value)));
            break;
          case Opcode::kNot:
          case Opcode::kMove:
            std::snprintf(buf, sizeof(buf), "%3zu: %s %s %s\n", i,
                          opcode_name(insn.op),
                          operand_to_string(insn.dst).c_str(),
                          operand_to_string(insn.src1).c_str());
            break;
          case Opcode::kCompare:
            std::snprintf(buf, sizeof(buf), "%3zu: COMPARE %s %s\n", i,
                          operand_to_string(insn.src1).c_str(),
                          operand_to_string(insn.src2).c_str());
            break;
          case Opcode::kCas:
            std::snprintf(buf, sizeof(buf), "%3zu: CAS %llu %s %s\n",
                          i,
                          static_cast<unsigned long long>(
                              insn.dst.value),
                          operand_to_string(insn.src1).c_str(),
                          operand_to_string(insn.src2).c_str());
            break;
          default:
            std::snprintf(buf, sizeof(buf), "%3zu: %s %s %s %s\n", i,
                          opcode_name(insn.op),
                          operand_to_string(insn.dst).c_str(),
                          operand_to_string(insn.src1).c_str(),
                          operand_to_string(insn.src2).c_str());
            break;
        }
        out += buf;
    }
    return out;
}

ProgramBuilder&
ProgramBuilder::emit(Instruction instruction)
{
    code_.push_back(instruction);
    return *this;
}

ProgramBuilder&
ProgramBuilder::load(std::uint32_t bytes)
{
    return emit({.op = Opcode::kLoad, .src1 = imm(bytes)});
}

ProgramBuilder&
ProgramBuilder::store(std::uint32_t mem_off, std::uint32_t data_off,
                      std::uint32_t len)
{
    return emit({.op = Opcode::kStore, .dst = imm(mem_off),
                 .src1 = imm(data_off), .src2 = imm(len)});
}

ProgramBuilder&
ProgramBuilder::add(Operand dst, Operand a, Operand b)
{
    return emit({.op = Opcode::kAdd, .dst = dst, .src1 = a, .src2 = b});
}

ProgramBuilder&
ProgramBuilder::sub(Operand dst, Operand a, Operand b)
{
    return emit({.op = Opcode::kSub, .dst = dst, .src1 = a, .src2 = b});
}

ProgramBuilder&
ProgramBuilder::mul(Operand dst, Operand a, Operand b)
{
    return emit({.op = Opcode::kMul, .dst = dst, .src1 = a, .src2 = b});
}

ProgramBuilder&
ProgramBuilder::div(Operand dst, Operand a, Operand b)
{
    return emit({.op = Opcode::kDiv, .dst = dst, .src1 = a, .src2 = b});
}

ProgramBuilder&
ProgramBuilder::band(Operand dst, Operand a, Operand b)
{
    return emit({.op = Opcode::kAnd, .dst = dst, .src1 = a, .src2 = b});
}

ProgramBuilder&
ProgramBuilder::bor(Operand dst, Operand a, Operand b)
{
    return emit({.op = Opcode::kOr, .dst = dst, .src1 = a, .src2 = b});
}

ProgramBuilder&
ProgramBuilder::bnot(Operand dst, Operand a)
{
    return emit({.op = Opcode::kNot, .dst = dst, .src1 = a});
}

ProgramBuilder&
ProgramBuilder::move(Operand dst, Operand src)
{
    return emit({.op = Opcode::kMove, .dst = dst, .src1 = src});
}

ProgramBuilder&
ProgramBuilder::compare(Operand a, Operand b)
{
    return emit({.op = Opcode::kCompare, .src1 = a, .src2 = b});
}

ProgramBuilder&
ProgramBuilder::jump(Cond cond, const std::string& label)
{
    pending_.push_back({code_.size(), label});
    return emit({.op = Opcode::kJump, .cond = cond});
}

ProgramBuilder&
ProgramBuilder::jump_eq(const std::string& label)
{
    return jump(Cond::kEq, label);
}

ProgramBuilder&
ProgramBuilder::jump_neq(const std::string& label)
{
    return jump(Cond::kNeq, label);
}

ProgramBuilder&
ProgramBuilder::jump_lt(const std::string& label)
{
    return jump(Cond::kLt, label);
}

ProgramBuilder&
ProgramBuilder::jump_gt(const std::string& label)
{
    return jump(Cond::kGt, label);
}

ProgramBuilder&
ProgramBuilder::jump_le(const std::string& label)
{
    return jump(Cond::kLe, label);
}

ProgramBuilder&
ProgramBuilder::jump_ge(const std::string& label)
{
    return jump(Cond::kGe, label);
}

ProgramBuilder&
ProgramBuilder::jump_always(const std::string& label)
{
    return jump(Cond::kAlways, label);
}

ProgramBuilder&
ProgramBuilder::cas(std::uint32_t mem_off, Operand expected,
                    Operand desired)
{
    return emit({.op = Opcode::kCas, .dst = imm(mem_off),
                 .src1 = expected, .src2 = desired});
}

ProgramBuilder&
ProgramBuilder::next_iter()
{
    return emit({.op = Opcode::kNextIter});
}

ProgramBuilder&
ProgramBuilder::ret()
{
    return emit({.op = Opcode::kReturn});
}

ProgramBuilder&
ProgramBuilder::spawn(Operand start_ptr, std::uint32_t arg_off,
                      std::uint32_t arg_len)
{
    return emit({.op = Opcode::kSpawn,
                 .dst = sp(arg_off,
                           static_cast<std::uint16_t>(arg_len)),
                 .src1 = start_ptr});
}

ProgramBuilder&
ProgramBuilder::reduce(ReduceOp op, std::uint32_t acc_off,
                       std::uint32_t lanes)
{
    return emit({.op = Opcode::kReduce, .dst = imm(acc_off),
                 .src1 = imm(lanes),
                 .src2 = imm(static_cast<std::uint64_t>(op))});
}

ProgramBuilder&
ProgramBuilder::join()
{
    return emit({.op = Opcode::kJoin});
}

ProgramBuilder&
ProgramBuilder::max_spawn_depth(std::uint32_t depth)
{
    max_spawn_depth_ = depth;
    return *this;
}

ProgramBuilder&
ProgramBuilder::label(const std::string& label)
{
    labels_.emplace_back(label,
                         static_cast<std::uint32_t>(code_.size()));
    return *this;
}

ProgramBuilder&
ProgramBuilder::scratch_bytes(std::uint32_t bytes)
{
    scratch_bytes_ = bytes;
    return *this;
}

ProgramBuilder&
ProgramBuilder::max_iters(std::uint32_t iters)
{
    max_iters_ = iters;
    return *this;
}

Program
ProgramBuilder::build() const
{
    std::vector<Instruction> code = code_;
    for (const PendingJump& jump : pending_) {
        bool found = false;
        for (const auto& [name, index] : labels_) {
            if (name == jump.label) {
                code[jump.index].target = index;
                found = true;
                break;
            }
        }
        if (!found) {
            fatal("ProgramBuilder: unresolved label '%s'",
                  jump.label.c_str());
        }
    }
    return Program(std::move(code), scratch_bytes_, max_iters_,
                   max_spawn_depth_);
}

}  // namespace pulse::isa
