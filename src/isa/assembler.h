/**
 * @file
 * Textual assembler for pulse ISA programs.
 *
 * Intended for tests, documentation and exploratory examples; the
 * data-structure library emits programs through ProgramBuilder directly.
 * Syntax (one instruction per line; ';' or '#' start comments):
 *
 *     LOAD 64
 *     COMPARE sp[0:8] data[0:8]
 *     JUMP_EQ found
 *     COMPARE 0 data[40:8]
 *     JUMP_EQ notfound
 *     MOVE cur_ptr data[40:8]
 *     NEXT_ITER
 *   notfound:
 *     MOVE sp[8:8] 42
 *     RETURN
 *   found:
 *     MOVE sp[8:8] data[8:8]
 *     RETURN
 *
 * Directives: ".scratch N", ".max_iters N" and ".max_spawn_depth N"
 * set program limits.
 * Operands: "cur_ptr", "sp[off:w]", "data[off:w]", or a decimal/0x
 * immediate; width defaults to 8 when ":w" is omitted.
 *
 * Fork/join extension:
 *     SPAWN sp[0:16], data[8:8]   ; fork at ptr, copy 16 B of args
 *     REDUCE 16, 2, ADD           ; accumulator at sp[16], 2 lanes
 *     JOIN                        ; terminal: wait for the subtrees
 */
#ifndef PULSE_ISA_ASSEMBLER_H
#define PULSE_ISA_ASSEMBLER_H

#include <optional>
#include <string>

#include "isa/program.h"

namespace pulse::isa {

/** Assembly result: a program or a diagnostic. */
struct AssembleResult
{
    std::optional<Program> program;
    std::string error;  ///< empty on success

    bool ok() const { return program.has_value(); }
};

/** Assemble @p source into a program (labels resolved, not verified). */
AssembleResult assemble(const std::string& source);

}  // namespace pulse::isa

#endif  // PULSE_ISA_ASSEMBLER_H
