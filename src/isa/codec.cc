#include "isa/codec.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace pulse::isa {
namespace {

constexpr Bytes kHeaderSize = 8;
constexpr Bytes kOperandSize = 11;
constexpr Bytes kInsnSize = 6 + 3 * kOperandSize;  // 39

void
put_u16(std::vector<std::uint8_t>& out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; i++) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; i++) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint16_t
get_u16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
get_u32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t
get_u64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return v;
}

void
put_operand(std::vector<std::uint8_t>& out, const Operand& operand)
{
    out.push_back(static_cast<std::uint8_t>(operand.kind));
    put_u16(out, operand.width);
    put_u64(out, operand.value);
}

bool
get_operand(const std::uint8_t* p, Operand* out)
{
    const auto kind = p[0];
    if (kind > static_cast<std::uint8_t>(OperandKind::kData)) {
        return false;
    }
    out->kind = static_cast<OperandKind>(kind);
    out->width = get_u16(p + 1);
    out->value = get_u64(p + 3);
    return true;
}

}  // namespace

Bytes
encoded_size(const Program& program)
{
    return kHeaderSize + program.size() * kInsnSize;
}

Bytes
wire_code_size(const Program& program)
{
    // 8 B per instruction + 8 B per unique wide immediate + header.
    std::vector<std::uint64_t> pool;
    for (const Instruction& insn : program.code()) {
        for (const Operand* operand :
             {&insn.dst, &insn.src1, &insn.src2}) {
            if (operand->kind == OperandKind::kImm &&
                operand->value > 0xFFFF) {
                if (std::find(pool.begin(), pool.end(),
                              operand->value) == pool.end()) {
                    pool.push_back(operand->value);
                }
            }
        }
    }
    return kHeaderSize + program.size() * 8 + pool.size() * 8;
}

std::vector<std::uint8_t>
encode_program(const Program& program)
{
    std::vector<std::uint8_t> out;
    out.reserve(encoded_size(program));
    put_u16(out, static_cast<std::uint16_t>(program.size()));
    put_u16(out, static_cast<std::uint16_t>(program.scratch_bytes()));
    PULSE_ASSERT(program.max_iters() < (1u << 24) &&
                     program.max_spawn_depth() <= kMaxSpawnDepthLimit,
                 "iter_word packing out of range");
    put_u32(out, program.max_iters() |
                     (program.max_spawn_depth() << 24));
    for (const Instruction& insn : program.code()) {
        out.push_back(static_cast<std::uint8_t>(insn.op));
        out.push_back(static_cast<std::uint8_t>(insn.cond));
        put_u32(out, insn.target);
        put_operand(out, insn.dst);
        put_operand(out, insn.src1);
        put_operand(out, insn.src2);
    }
    return out;
}

std::optional<Program>
decode_program(const std::vector<std::uint8_t>& bytes)
{
    if (bytes.size() < kHeaderSize) {
        return std::nullopt;
    }
    const std::uint16_t num_insns = get_u16(bytes.data());
    const std::uint16_t scratch_bytes = get_u16(bytes.data() + 2);
    const std::uint32_t iter_word = get_u32(bytes.data() + 4);
    const std::uint32_t max_iters = iter_word & 0xFFFFFF;
    const std::uint32_t max_spawn_depth = iter_word >> 24;
    if (max_spawn_depth > kMaxSpawnDepthLimit) {
        return std::nullopt;
    }
    if (bytes.size() != kHeaderSize + num_insns * kInsnSize) {
        return std::nullopt;
    }
    std::vector<Instruction> code;
    code.reserve(num_insns);
    const std::uint8_t* p = bytes.data() + kHeaderSize;
    for (std::uint16_t i = 0; i < num_insns; i++, p += kInsnSize) {
        Instruction insn;
        if (p[0] > static_cast<std::uint8_t>(Opcode::kJoin) ||
            p[1] > static_cast<std::uint8_t>(Cond::kGe)) {
            return std::nullopt;
        }
        insn.op = static_cast<Opcode>(p[0]);
        insn.cond = static_cast<Cond>(p[1]);
        insn.target = get_u32(p + 2);
        if (!get_operand(p + 6, &insn.dst) ||
            !get_operand(p + 6 + kOperandSize, &insn.src1) ||
            !get_operand(p + 6 + 2 * kOperandSize, &insn.src2)) {
            return std::nullopt;
        }
        code.push_back(insn);
    }
    return Program(std::move(code), scratch_bytes, max_iters,
                   max_spawn_depth);
}

}  // namespace pulse::isa
