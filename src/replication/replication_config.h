/**
 * @file
 * Configuration for the fault-tolerance plane (src/replication).
 *
 * Two modes (docs/REPLICATION.md):
 *   - factor 1: no plane is constructed; the replication path is a
 *               strict no-op and runs stay bit-identical to a build
 *               without the subsystem (the default).
 *   - factor k (2, 3, ...): every memory node's allocated bytes are
 *               mirrored on k-1 other nodes (COPY to establish, write-
 *               synchronous store/CAS mirroring to maintain), a seeded
 *               heartbeat detector watches every node, and on a
 *               declared death the switch atomically re-routes the dead
 *               node's ranges to a surviving replica.
 */
#ifndef PULSE_REPLICATION_REPLICATION_CONFIG_H
#define PULSE_REPLICATION_REPLICATION_CONFIG_H

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/units.h"

namespace pulse::replication {

/** Fault-tolerance-plane knobs. */
struct ReplicationConfig
{
    /** Copies of every byte (1 = subsystem absent, the default). */
    std::uint32_t replication_factor = 1;

    /** Seed for the plane's private generator (heartbeat jitter). */
    std::uint64_t seed = 0x5eedbeef;

    /**
     * Heartbeat probe period. Every round the detector probes each
     * live node from client 0 through the ordinary message path, so
     * probes experience the same stalls/blackouts traversals do.
     */
    Time heartbeat_interval = micros(20.0);

    /** Probe/ack frame size (NIC-header-sized, like copy acks). */
    Bytes heartbeat_bytes = 64;

    /**
     * Deterministic jitter on each probe period, as a fraction of the
     * interval: de-synchronizes probe rounds from workload periodicity
     * without a shared RNG stream.
     */
    double heartbeat_jitter = 0.1;

    /**
     * Phi-accrual-style suspicion threshold: a node is suspected when
     * (now - last_ack) exceeds this multiple of the smoothed inter-ack
     * interval. Together with min_missed_probes this sets the
     * stall-vs-blackout boundary — a stall shorter than roughly
     * threshold * interval delivers its held acks in time and is never
     * declared dead.
     */
    double suspicion_threshold = 8.0;

    /** Consecutive unacked probes required before declaring death. */
    std::uint32_t min_missed_probes = 4;

    /** Replica-copy transfer granularity over the network. */
    Bytes copy_chunk_bytes = 16 * kKiB;

    /** Copy-phase chunks kept in flight (selective repeat window). */
    std::uint32_t copy_window = 4;

    /** Retransmit timeout for an unacked replica-copy chunk. */
    Time copy_rto = micros(50.0);

    /** Total chunk retransmissions before a replica copy aborts. */
    std::uint32_t copy_max_retries = 32;

    /**
     * Background scan period: uncovered allocation is picked up for
     * replication and lost redundancy is restored. The scan timer
     * self-quiesces when there is no copy work, no unresolved
     * suspicion, and no traffic, so it never keeps the queue alive.
     */
    Time scan_interval = micros(25.0);

    bool enabled() const { return replication_factor > 1; }

    /**
     * Parse the PULSE_REPLICATION environment variable:
     *   "" / unset / "off" -> factor 1 (the default)
     *   "k2"               -> factor 2
     *   "k3"               -> factor 3
     * Unknown values are treated as off so existing runs stay
     * untouched by typos.
     */
    static ReplicationConfig
    from_env()
    {
        ReplicationConfig config;
        const char* env = std::getenv("PULSE_REPLICATION");
        if (env == nullptr || *env == '\0') {
            return config;
        }
        const std::string value(env);
        if (value == "k2") {
            config.replication_factor = 2;
        } else if (value == "k3") {
            config.replication_factor = 3;
        }
        return config;
    }
};

}  // namespace pulse::replication

#endif  // PULSE_REPLICATION_REPLICATION_CONFIG_H
