#include "replication/replication_plane.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace pulse::replication {

namespace {
/** Copy-ack frames are NIC-header-sized, like migration acks. */
constexpr Bytes kAckBytes = 64;
/** Replica backing keeps data-structure node alignment. */
constexpr Bytes kBackingAlign = 256;
}  // namespace

ReplicationPlane::ReplicationPlane(sim::EventQueue& queue,
                                   net::Network& network,
                                   mem::GlobalMemory& memory,
                                   mem::ClusterAllocator& allocator,
                                   std::vector<mem::RangeTcam*> tcams,
                                   std::vector<mem::ChannelSet*> channels,
                                   const ReplicationConfig& config)
    : queue_(queue), network_(network), memory_(memory),
      allocator_(allocator), tcams_(std::move(tcams)),
      channels_(std::move(channels)), config_(config),
      rng_(config.seed),
      detector_(memory.num_nodes(), config.heartbeat_interval,
                config.suspicion_threshold, config.min_missed_probes),
      covered_(memory.num_nodes(), 0)
{
    PULSE_ASSERT(config_.enabled(), "plane built with factor 1");
    PULSE_ASSERT(config_.copy_chunk_bytes > 0, "zero copy chunk");
    PULSE_ASSERT(config_.copy_window > 0, "zero copy window");
    PULSE_ASSERT(tcams_.size() == memory_.num_nodes() &&
                     channels_.size() == memory_.num_nodes(),
                 "replication plane wiring mismatch");
    arm_scan();
    arm_probe();
}

void
ReplicationPlane::attach_replay_windows(
    std::vector<accel::ReplayWindow*> windows)
{
    PULSE_ASSERT(windows.size() == memory_.num_nodes(),
                 "one replay window per node");
    replay_windows_ = std::move(windows);
}

// ---------------------------------------------------------------------
// Control loops
// ---------------------------------------------------------------------

void
ReplicationPlane::note_activity()
{
    scan_saw_traffic_ = true;
    probe_saw_traffic_ = true;
    if (!scan_armed_) {
        arm_scan();
    }
    if (!probe_armed_) {
        arm_probe();
    }
}

void
ReplicationPlane::arm_scan()
{
    scan_armed_ = true;
    queue_.schedule_after(config_.scan_interval, [this] { on_scan(); });
}

void
ReplicationPlane::on_scan()
{
    grow_extents();
    plan_replication();
    pump();
    // Self-quiescing: stay armed only while there is copy work or the
    // workload is generating traffic (allocation can grow mid-run), so
    // an idle cluster's queue still drains.
    const bool keep = scan_saw_traffic_ || busy();
    scan_saw_traffic_ = false;
    if (keep) {
        arm_scan();
    } else {
        scan_armed_ = false;
    }
}

void
ReplicationPlane::grow_extents()
{
    for (NodeId node = 0; node < memory_.num_nodes(); node++) {
        if (detector_.is_dead(node)) {
            continue;  // nothing new can be allocated worth saving
        }
        // Application frontier only: replica backing store also sits
        // past a node's bump pointer, and covering it would replicate
        // the replicas (a self-amplifying loop).
        const Bytes allocated = allocator_.app_allocated_on(node);
        if (allocated <= covered_[node]) {
            continue;
        }
        Extent extent;
        extent.home = node;
        extent.va_base =
            memory_.address_map().region(node).base + covered_[node];
        extent.length = allocated - covered_[node];
        covered_[node] = allocated;
        extents_.push_back(std::move(extent));
    }
}

void
ReplicationPlane::plan_replication()
{
    std::uint32_t live_nodes = 0;
    for (NodeId node = 0; node < memory_.num_nodes(); node++) {
        if (!detector_.is_dead(node)) {
            live_nodes++;
        }
    }
    // Clamp the factor to what the surviving cluster can hold.
    const std::uint32_t desired =
        std::min(config_.replication_factor, live_nodes);
    for (std::size_t index = 0; index < extents_.size(); index++) {
        Extent& extent = extents_[index];
        const std::optional<NodeId> owner =
            memory_.address_map().node_for(extent.va_base);
        if (!owner || detector_.is_dead(*owner)) {
            continue;  // authoritative copy unreachable: nothing to read
        }
        // Count current holders of the bytes: the home, but only while
        // it is still the authoritative owner (after a failover the
        // home's frame is stale — writes went to the replicas — so a
        // recovered home adds no redundancy), plus every live or
        // in-flight replica. The owning replica counts via the replica
        // loop.
        std::uint32_t holders = (*owner == extent.home) ? 1 : 0;
        for (const Replica& replica : extent.replicas) {
            if (!replica.abandoned &&
                !detector_.is_dead(replica.node)) {
                holders++;
            }
        }
        while (holders < desired) {
            NodeId target = kInvalidNode;
            // step in [1, n] so the rotation covers every node; the
            // home comes up last (step == n) and is only eligible
            // when stale (see below).
            for (std::uint32_t step = 1; step <= memory_.num_nodes();
                 step++) {
                const NodeId candidate = static_cast<NodeId>(
                    (extent.home + step) % memory_.num_nodes());
                // The home is a valid replica target only once it has
                // lost ownership (failover or migration moved the
                // authoritative path away and left its frame stale) —
                // re-populating it then restores the factor on a
                // recovered node.
                if ((candidate == extent.home &&
                     *owner == extent.home) ||
                    detector_.is_dead(candidate)) {
                    continue;
                }
                // Abandoned records (allocation failed there) block
                // their node too: re-targeting it every scan would
                // spin on the same full node. notify_recovered erases
                // abandoned records, re-opening the node when topology
                // changes free capacity.
                const bool holds = std::any_of(
                    extent.replicas.begin(), extent.replicas.end(),
                    [candidate](const Replica& r) {
                        return r.node == candidate;
                    });
                if (!holds) {
                    target = candidate;
                    break;
                }
            }
            if (target == kInvalidNode) {
                break;  // degraded: no eligible node left
            }
            Replica replica;
            replica.node = target;
            extent.replicas.push_back(replica);
            pending_.emplace_back(index, target);
            holders++;
        }
    }
}

void
ReplicationPlane::pump()
{
    while (!active_ && !pending_.empty()) {
        const auto [index, target] = pending_.front();
        pending_.pop_front();
        Extent& extent = extents_[index];
        auto it = std::find_if(
            extent.replicas.begin(), extent.replicas.end(),
            [target](const Replica& r) {
                return r.node == target && !r.live && !r.abandoned;
            });
        if (it == extent.replicas.end() ||
            detector_.is_dead(target)) {
            continue;  // purged or died while queued
        }
        const std::optional<NodeId> owner =
            memory_.address_map().node_for(extent.va_base);
        if (!owner || detector_.is_dead(*owner)) {
            continue;  // source unreachable: re-planned if it returns
        }
        const Bytes phys =
            allocator_.alloc_backing(target, extent.length,
                                     kBackingAlign);
        if (phys == mem::ClusterAllocator::kNoBacking) {
            it->abandoned = true;
            stats_.replica_alloc_failures.increment();
            continue;
        }
        it->phys = phys;

        const std::size_t chunks = static_cast<std::size_t>(
            (extent.length + config_.copy_chunk_bytes - 1) /
            config_.copy_chunk_bytes);
        active_.emplace();
        active_->extent = index;
        active_->length = extent.length;
        active_->src = *owner;
        active_->dst = target;
        active_->dst_phys = phys;
        active_->rereplication = extent.established_once;
        active_->acked.assign(chunks, false);
        stats_.copies_started.increment();
        if (active_->rereplication) {
            stats_.rereplications.increment();
        }
        const std::size_t window =
            std::min<std::size_t>(config_.copy_window, chunks);
        for (std::size_t i = 0; i < window; i++) {
            send_chunk(active_->next_unsent++, /*retransmit=*/false);
        }
    }
}

void
ReplicationPlane::arm_probe()
{
    probe_armed_ = true;
    // Deterministic jitter from the plane's private stream keeps probe
    // rounds from phase-locking with workload periodicity.
    const Time jitter = static_cast<Time>(
        static_cast<double>(config_.heartbeat_interval) *
        config_.heartbeat_jitter * rng_.next_double());
    queue_.schedule_after(config_.heartbeat_interval + jitter,
                          [this] { on_probe_round(); });
}

void
ReplicationPlane::on_probe_round()
{
    // Quiesce when the previous round fully resolved and nothing is
    // moving: detection is only needed while there is traffic to
    // protect or an unanswered probe to chase. Any mirror call re-arms.
    const bool active =
        probe_saw_traffic_ || detector_.unresolved() || busy();
    probe_saw_traffic_ = false;
    if (!active) {
        probe_armed_ = false;
        return;
    }
    const Time now = queue_.now();
    for (NodeId node = 0; node < detector_.num_nodes(); node++) {
        if (detector_.should_declare(node, now)) {
            execute_failover(node);
        }
    }
    for (NodeId node = 0; node < detector_.num_nodes(); node++) {
        if (detector_.is_dead(node)) {
            continue;
        }
        detector_.on_probe_sent(node, now);
        stats_.heartbeats_sent.increment();
        // Probe and ack ride the ordinary message path, so they stall
        // and black out exactly as traversal traffic does — that is
        // what gives the detector its stall-vs-blackout signal.
        network_.send_message(
            net::EndpointAddr::client(0),
            net::EndpointAddr::mem_node(node),
            config_.heartbeat_bytes, [this, node] {
                network_.send_message(
                    net::EndpointAddr::mem_node(node),
                    net::EndpointAddr::client(0),
                    config_.heartbeat_bytes, [this, node] {
                        stats_.heartbeat_acks.increment();
                        detector_.on_ack(node, queue_.now());
                    });
            });
    }
    arm_probe();
}

// ---------------------------------------------------------------------
// Replica copy protocol (the migration engine's COPY phase, re-aimed
// at replica backing: same chunked selective repeat, same RTO shape)
// ---------------------------------------------------------------------

Bytes
ReplicationPlane::chunk_offset(std::size_t chunk) const
{
    return static_cast<Bytes>(chunk) * config_.copy_chunk_bytes;
}

Bytes
ReplicationPlane::chunk_length(std::size_t chunk) const
{
    const Bytes offset = chunk_offset(chunk);
    return std::min(config_.copy_chunk_bytes,
                    active_->length - offset);
}

void
ReplicationPlane::send_chunk(std::size_t chunk, bool retransmit)
{
    ActiveCopy& copy = *active_;
    const Bytes len = chunk_length(chunk);
    stats_.chunks_sent.increment();
    stats_.bytes_copied.increment(len);
    if (retransmit) {
        stats_.chunks_retransmitted.increment();
    }
    // Source DMA read contends with traversal loads on the owner's DRAM
    // channels; the chunk then crosses the fabric as an ordinary
    // message, subject to the fault plane like everything else.
    const Time now = queue_.now();
    const Time read_done = channels_[copy.src]->access(now, len);
    const std::uint64_t gen = generation_;
    const NodeId src = copy.src;
    const NodeId dst = copy.dst;
    queue_.schedule_at(read_done, [this, gen, chunk, src, dst, len] {
        if (generation_ != gen) {
            return;  // copy ended while the read was in flight
        }
        network_.send_message(net::EndpointAddr::mem_node(src),
                              net::EndpointAddr::mem_node(dst), len,
                              [this, gen, chunk] {
                                  on_chunk_delivered(gen, chunk);
                              });
    });
    arm_rto(chunk);
}

void
ReplicationPlane::on_chunk_delivered(std::uint64_t generation,
                                     std::size_t chunk)
{
    if (generation != generation_ || !active_) {
        return;  // stale chunk of a finished copy
    }
    ActiveCopy& copy = *active_;
    // Timed write into the reserved backing; the authoritative bytes
    // land in one atomic functional copy at finish, so chunks stale by
    // racing stores can never leak. Duplicate deliveries re-ack.
    channels_[copy.dst]->access(queue_.now(), chunk_length(chunk));
    network_.send_message(
        net::EndpointAddr::mem_node(copy.dst),
        net::EndpointAddr::mem_node(copy.src), kAckBytes,
        [this, generation, chunk] { on_copy_ack(generation, chunk); });
}

void
ReplicationPlane::on_copy_ack(std::uint64_t generation,
                              std::size_t chunk)
{
    if (generation != generation_ || !active_) {
        return;
    }
    ActiveCopy& copy = *active_;
    if (copy.acked[chunk]) {
        return;  // duplicate ack
    }
    copy.acked[chunk] = true;
    copy.acked_count++;
    if (copy.acked_count == copy.acked.size()) {
        finish_copy();
        return;
    }
    if (copy.next_unsent < copy.acked.size()) {
        send_chunk(copy.next_unsent++, /*retransmit=*/false);
    }
}

void
ReplicationPlane::arm_rto(std::size_t chunk)
{
    const std::uint64_t gen = generation_;
    queue_.schedule_after(config_.copy_rto, [this, gen, chunk] {
        if (generation_ != gen || !active_ || active_->acked[chunk]) {
            return;
        }
        if (++active_->retries > config_.copy_max_retries) {
            abort_copy();
            return;
        }
        send_chunk(chunk, /*retransmit=*/true);
    });
}

void
ReplicationPlane::finish_copy()
{
    ActiveCopy copy = std::move(*active_);
    active_.reset();
    generation_++;  // quench copy-phase timers and stragglers

    Extent& extent = extents_[copy.extent];
    // Atomic functional copy: the placement-aware read pulls the
    // authoritative bytes from wherever they currently live, so every
    // store that landed during the copy phase is included; from the
    // next event on, mirror_store keeps the replica write-synchronous.
    std::vector<std::uint8_t> bytes(copy.length);
    memory_.read(extent.va_base, bytes.data(), copy.length);
    memory_.node(copy.dst).write(copy.dst_phys, bytes.data(),
                                 copy.length);

    auto it = std::find_if(
        extent.replicas.begin(), extent.replicas.end(),
        [&copy](const Replica& r) {
            return r.node == copy.dst && !r.live && !r.abandoned;
        });
    PULSE_ASSERT(it != extent.replicas.end(),
                 "finished copy lost its replica record");
    it->live = true;
    // "Established" means the full planned replica set went live once;
    // copies after that point are re-replication (redundancy repair),
    // not initial establishment.
    if (std::none_of(extent.replicas.begin(), extent.replicas.end(),
                     [](const Replica& r) {
                         return !r.live && !r.abandoned;
                     })) {
        extent.established_once = true;
    }
    stats_.replicas_established.increment();
    if (!busy()) {
        last_restore_time_ = queue_.now();
    }
    pump();
}

void
ReplicationPlane::abort_copy()
{
    ActiveCopy copy = std::move(*active_);
    active_.reset();
    generation_++;
    allocator_.free_backing(copy.dst, copy.dst_phys, copy.length);
    Extent& extent = extents_[copy.extent];
    extent.replicas.erase(
        std::remove_if(extent.replicas.begin(), extent.replicas.end(),
                       [&copy](const Replica& r) {
                           return r.node == copy.dst && !r.live;
                       }),
        extent.replicas.end());
    stats_.copies_aborted.increment();
    // The scan re-plans the lost slot once the topology settles.
    scan_saw_traffic_ = true;
    if (!scan_armed_) {
        arm_scan();
    }
    pump();
}

// ---------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------

std::vector<std::pair<VirtAddr, Bytes>>
ReplicationPlane::spans_owned_by(const Extent& extent,
                                 NodeId owner) const
{
    // Maximal sub-spans of the extent whose current owner (home
    // partition overlaid with migration remaps) is @p owner.
    std::vector<std::pair<VirtAddr, Bytes>> spans;
    const mem::AddressMap& map = memory_.address_map();
    VirtAddr cursor = extent.va_base;
    const VirtAddr end = extent.va_base + extent.length;
    for (const mem::Remap& remap : map.remaps()) {
        const VirtAddr lo = std::max(remap.va_base, extent.va_base);
        const VirtAddr hi = std::min(remap.va_base + remap.length, end);
        if (hi <= lo) {
            continue;
        }
        if (cursor < lo && extent.home == owner) {
            spans.emplace_back(cursor, lo - cursor);
        }
        if (remap.node == owner) {
            spans.emplace_back(lo, hi - lo);
        }
        cursor = std::max(cursor, hi);
    }
    if (cursor < end && extent.home == owner) {
        spans.emplace_back(cursor, end - cursor);
    }
    // Coalesce adjacency so each span costs one remap + TCAM entry.
    std::vector<std::pair<VirtAddr, Bytes>> merged;
    for (const auto& span : spans) {
        if (!merged.empty() &&
            merged.back().first + merged.back().second == span.first) {
            merged.back().second += span.second;
        } else {
            merged.push_back(span);
        }
    }
    return merged;
}

void
ReplicationPlane::execute_failover(NodeId dead)
{
    detector_.declare_dead(dead);
    stats_.nodes_declared_dead.increment();

    // Quench copy machinery involving the dead node.
    if (active_ && (active_->src == dead || active_->dst == dead)) {
        abort_copy();
    }
    pending_.erase(
        std::remove_if(pending_.begin(), pending_.end(),
                       [dead](const std::pair<std::size_t, NodeId>& p) {
                           return p.second == dead;
                       }),
        pending_.end());
    for (Extent& extent : extents_) {
        extent.replicas.erase(
            std::remove_if(
                extent.replicas.begin(), extent.replicas.end(),
                [&](const Replica& r) {
                    if (r.node != dead && !r.abandoned) {
                        return false;
                    }
                    // Replicas on the dead node are lost; abandoned
                    // slots get a fresh chance under the new topology.
                    if (r.node == dead && r.live) {
                        allocator_.free_backing(dead, r.phys,
                                                extent.length);
                    }
                    return true;
                }),
            extent.replicas.end());
    }

    // Atomically re-route everything the dead node served to surviving
    // replicas: AddressMap overlay first (the authority), then switch
    // overlay and TCAMs derived from it — the same lockstep a migration
    // cutover uses, so the route-agreement audit holds throughout.
    FailoverRecord record;
    record.node = dead;
    record.declared_at = queue_.now();
    mem::AddressMap& map = memory_.mutable_address_map();
    bool rerouted = false;
    for (Extent& extent : extents_) {
        const auto spans = spans_owned_by(extent, dead);
        if (spans.empty()) {
            continue;
        }
        Replica* replica = live_replica(extent, dead);
        if (replica == nullptr) {
            stats_.failover_spans_lost.increment(spans.size());
            continue;
        }
        for (const auto& [base, length] : spans) {
            if (!tcams_[dead]->can_punch(base, length) ||
                tcams_[replica->node]->size() >=
                    tcams_[replica->node]->capacity()) {
                stats_.failover_spans_lost.increment();
                continue;
            }
            const bool remapped = map.install_remap(mem::Remap{
                base, length, replica->node,
                replica->phys + (base - extent.va_base)});
            PULSE_ASSERT(remapped, "failover remap rejected");
            const bool punched = tcams_[dead]->punch(base, length);
            PULSE_ASSERT(punched, "pre-checked failover punch failed");
            const bool installed =
                tcams_[replica->node]->insert_coalesce(mem::RangeEntry{
                    base, length,
                    replica->phys + (base - extent.va_base),
                    mem::Perm::kReadWrite});
            PULSE_ASSERT(installed,
                         "pre-checked failover insert failed");
            rerouted = true;
            record.spans++;
            record.bytes += length;
            stats_.failover_spans_rerouted.increment();
            stats_.failover_bytes_rerouted.increment(length);
        }
    }
    if (rerouted) {
        net::SwitchTable& table = network_.switch_table();
        table.clear_overlay();
        for (const mem::Remap& remap : map.remaps()) {
            table.add_overlay_rule(net::SwitchRule{
                remap.va_base, remap.length, remap.node});
        }
    }
    stats_.failovers_executed.increment();
    failover_log_.push_back(record);
    last_restore_time_ = queue_.now();

    // Redundancy dropped: let the scan rebuild it on survivors.
    scan_saw_traffic_ = true;
    if (!scan_armed_) {
        arm_scan();
    }
}

// ---------------------------------------------------------------------
// Write-synchronous mirroring (accelerator hooks)
// ---------------------------------------------------------------------

ReplicationPlane::Extent*
ReplicationPlane::extent_containing(VirtAddr va)
{
    for (Extent& extent : extents_) {
        if (va >= extent.va_base &&
            va - extent.va_base < extent.length) {
            return &extent;
        }
    }
    return nullptr;
}

ReplicationPlane::Replica*
ReplicationPlane::live_replica(Extent& extent, NodeId excluding)
{
    for (Replica& replica : extent.replicas) {
        if (replica.live && !replica.abandoned &&
            replica.node != excluding &&
            !detector_.is_dead(replica.node)) {
            return &replica;
        }
    }
    return nullptr;
}

void
ReplicationPlane::mirror_store(NodeId at, VirtAddr va,
                               const void* data, Bytes len, Time now)
{
    (void)at;
    note_activity();
    const std::uint8_t* src = static_cast<const std::uint8_t*>(data);
    VirtAddr cursor = va;
    Bytes remaining = len;
    while (remaining > 0) {
        Extent* extent = extent_containing(cursor);
        if (extent == nullptr) {
            return;  // not yet covered: the establishment copy will
                     // read these bytes when the scan picks them up
        }
        const Bytes offset = cursor - extent->va_base;
        const Bytes span =
            std::min(remaining, extent->length - offset);
        const std::optional<NodeId> owner =
            memory_.address_map().node_for(cursor);
        for (Replica& replica : extent->replicas) {
            // The current owner already took the authoritative write.
            if (!replica.live ||
                (owner && replica.node == *owner)) {
                continue;
            }
            channels_[replica.node]->access(now, span);
            memory_.node(replica.node)
                .write(replica.phys + offset, src, span);
            stats_.store_mirrors.increment();
        }
        cursor += span;
        src += span;
        remaining -= span;
    }
}

void
ReplicationPlane::mirror_cas(NodeId at, VirtAddr va,
                             std::uint64_t desired, Time now)
{
    (void)at;
    note_activity();
    Extent* extent = extent_containing(va);
    if (extent == nullptr) {
        return;
    }
    const Bytes offset = va - extent->va_base;
    const std::optional<NodeId> owner =
        memory_.address_map().node_for(va);
    for (Replica& replica : extent->replicas) {
        if (!replica.live || (owner && replica.node == *owner)) {
            continue;
        }
        channels_[replica.node]->access(now, sizeof(desired));
        memory_.node(replica.node)
            .write(replica.phys + offset, &desired, sizeof(desired));
        stats_.cas_mirrors.increment();
    }
}

// ---------------------------------------------------------------------
// Replay-digest mirroring: exactly-once across a responder's death
// ---------------------------------------------------------------------

void
ReplicationPlane::mirror_mark(NodeId from,
                              const accel::ReplayWindow::Key& key)
{
    note_activity();
    for (NodeId node = 0; node < replay_windows_.size(); node++) {
        accel::ReplayWindow* window = replay_windows_[node];
        if (node == from || window == nullptr || !window->enabled()) {
            continue;
        }
        // A retransmit that reaches a replica before the original
        // execution completed must be suppressed, not re-executed —
        // the in-progress mark is what carries that knowledge over.
        if (window->classify(key) ==
            accel::ReplayWindow::Verdict::kNew) {
            window->mark_in_progress(key);
            stats_.digest_marks.increment();
        }
    }
}

void
ReplicationPlane::mirror_response(NodeId from,
                                  const accel::ReplayWindow::Key& key,
                                  const net::TraversalPacket& response)
{
    note_activity();
    for (NodeId node = 0; node < replay_windows_.size(); node++) {
        accel::ReplayWindow* window = replay_windows_[node];
        if (node == from || window == nullptr || !window->enabled()) {
            continue;
        }
        const auto verdict = window->classify(key);
        if (verdict == accel::ReplayWindow::Verdict::kCached) {
            continue;  // already completed here (absorbed digest)
        }
        if (verdict == accel::ReplayWindow::Verdict::kNew) {
            window->mark_in_progress(key);
        }
        window->import_completion(key, response);
        stats_.digest_completions.increment();
    }
}

void
ReplicationPlane::mirror_unmark(NodeId from,
                                const accel::ReplayWindow::Key& key)
{
    note_activity();
    for (NodeId node = 0; node < replay_windows_.size(); node++) {
        accel::ReplayWindow* window = replay_windows_[node];
        if (node == from || window == nullptr || !window->enabled()) {
            continue;
        }
        if (window->classify(key) ==
            accel::ReplayWindow::Verdict::kInProgress) {
            window->unmark(key);
            stats_.digest_unmarks.increment();
        }
    }
}

// ---------------------------------------------------------------------
// Recovery / introspection
// ---------------------------------------------------------------------

void
ReplicationPlane::notify_cutover(NodeId src, NodeId dst,
                                 VirtAddr va_base, Bytes length)
{
    (void)src;
    (void)dst;
    (void)va_base;
    (void)length;
    stats_.cutovers_observed.increment();
    note_activity();
}

void
ReplicationPlane::notify_recovered(NodeId node)
{
    if (node >= detector_.num_nodes()) {
        return;  // nemesis window for a node this cluster lacks
    }
    stats_.recoveries.increment();
    detector_.mark_recovered(node, queue_.now());
    // Abandoned slots get retried under the restored topology.
    for (Extent& extent : extents_) {
        extent.replicas.erase(
            std::remove_if(extent.replicas.begin(),
                           extent.replicas.end(),
                           [](const Replica& r) {
                               return r.abandoned;
                           }),
            extent.replicas.end());
    }
    scan_saw_traffic_ = true;
    probe_saw_traffic_ = true;
    if (!scan_armed_) {
        arm_scan();
    }
    if (!probe_armed_) {
        arm_probe();
    }
}

double
ReplicationPlane::suspicion(NodeId node) const
{
    // While the probe loop is quiesced (no traffic) the detector has
    // no opinion: raw silence ratio would grow without bound and read
    // as suspicion of a healthy idle node.
    if (!probe_armed_) {
        return 0.0;
    }
    return detector_.suspicion(node, queue_.now());
}

bool
ReplicationPlane::is_dead(NodeId node) const
{
    return node < detector_.num_nodes() && detector_.is_dead(node);
}

Bytes
ReplicationPlane::rereplication_backlog_bytes() const
{
    Bytes backlog = active_ ? active_->length : 0;
    for (const auto& [index, target] : pending_) {
        backlog += extents_[index].length;
    }
    return backlog;
}

void
ReplicationPlane::register_stats(const std::string& prefix,
                                 StatRegistry& registry)
{
    registry.register_counter(prefix + ".replicas_established",
                              &stats_.replicas_established);
    registry.register_counter(prefix + ".copies_started",
                              &stats_.copies_started);
    registry.register_counter(prefix + ".copies_aborted",
                              &stats_.copies_aborted);
    registry.register_counter(prefix + ".bytes_copied",
                              &stats_.bytes_copied);
    registry.register_counter(prefix + ".chunks_sent",
                              &stats_.chunks_sent);
    registry.register_counter(prefix + ".chunks_retransmitted",
                              &stats_.chunks_retransmitted);
    registry.register_counter(prefix + ".replica_alloc_failures",
                              &stats_.replica_alloc_failures);
    registry.register_counter(prefix + ".store_mirrors",
                              &stats_.store_mirrors);
    registry.register_counter(prefix + ".cas_mirrors",
                              &stats_.cas_mirrors);
    registry.register_counter(prefix + ".digest_marks",
                              &stats_.digest_marks);
    registry.register_counter(prefix + ".digest_completions",
                              &stats_.digest_completions);
    registry.register_counter(prefix + ".digest_unmarks",
                              &stats_.digest_unmarks);
    registry.register_counter(prefix + ".heartbeats_sent",
                              &stats_.heartbeats_sent);
    registry.register_counter(prefix + ".heartbeat_acks",
                              &stats_.heartbeat_acks);
    registry.register_counter(prefix + ".nodes_declared_dead",
                              &stats_.nodes_declared_dead);
    registry.register_counter(prefix + ".failovers_executed",
                              &stats_.failovers_executed);
    registry.register_counter(prefix + ".failover_spans_rerouted",
                              &stats_.failover_spans_rerouted);
    registry.register_counter(prefix + ".failover_bytes_rerouted",
                              &stats_.failover_bytes_rerouted);
    registry.register_counter(prefix + ".failover_spans_lost",
                              &stats_.failover_spans_lost);
    registry.register_counter(prefix + ".rereplications",
                              &stats_.rereplications);
    registry.register_counter(prefix + ".recoveries",
                              &stats_.recoveries);
    registry.register_counter(prefix + ".cutovers_observed",
                              &stats_.cutovers_observed);
}

}  // namespace pulse::replication
