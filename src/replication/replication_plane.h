/**
 * @file
 * Fault-tolerance plane: k-way replication, failure detection, and
 * automatic failover (docs/REPLICATION.md).
 *
 * The plane keeps k copies of every allocated byte:
 *
 *   - **COPY**: a background scan discovers allocation growth per home
 *     node and establishes replicas with the migration engine's chunked
 *     selective-repeat protocol (timed chunks + acks over the fabric,
 *     RTO retransmits, abort on a dead link), finishing with one atomic
 *     functional copy so racing stores can never leak stale bytes.
 *   - **DUAL**: once a replica is live it is write-synchronous — every
 *     accelerator store/CAS success is mirrored into the replica
 *     backing (charging the replica node's DRAM channels), and every
 *     replay-window transition (mark, completion, drop) is mirrored
 *     into the other nodes' dedup windows, so exactly-once holds on
 *     whichever replica ends up answering.
 *   - **DETECT**: a seeded heartbeat loop probes every live node
 *     through the ordinary message path and feeds a phi-accrual-style
 *     detector (src/net/heartbeat.h) that distinguishes a stall (late
 *     acks) from a blackout (no acks).
 *   - **FAILOVER**: declaring a node dead re-routes every span it
 *     owned to a surviving replica in one atomic event, via the same
 *     AddressMap-remap -> switch-overlay -> TCAM path a migration
 *     cutover uses, so the route-agreement audit always holds.
 *   - **RE-REPLICATE**: the scan restores the replication factor on
 *     surviving nodes; notify_recovered() re-admits a healed node.
 *
 * Constructed only when ReplicationConfig::enabled(); a null plane
 * pointer in the accelerator is a strict no-op, keeping
 * PULSE_REPLICATION=off bit-identical to a build without this file.
 */
#ifndef PULSE_REPLICATION_REPLICATION_PLANE_H
#define PULSE_REPLICATION_REPLICATION_PLANE_H

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "accel/replay_window.h"
#include "common/random.h"
#include "common/stats.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "mem/memory_channel.h"
#include "mem/range_tcam.h"
#include "net/heartbeat.h"
#include "net/network.h"
#include "replication/replication_config.h"
#include "sim/event_queue.h"

namespace pulse::replication {

/** Plane statistics (exported under "replication."). */
struct ReplicationStats
{
    Counter replicas_established;   ///< copies that went live
    Counter copies_started;
    Counter copies_aborted;         ///< dead link / dying source
    Counter bytes_copied;           ///< timed copy-phase traffic
    Counter chunks_sent;
    Counter chunks_retransmitted;
    Counter replica_alloc_failures; ///< no backing on any target
    Counter store_mirrors;          ///< write-synchronous stores
    Counter cas_mirrors;            ///< write-synchronous CAS results
    Counter digest_marks;           ///< replay in-progress mirrored
    Counter digest_completions;     ///< replay responses mirrored
    Counter digest_unmarks;         ///< replay drops mirrored
    Counter heartbeats_sent;
    Counter heartbeat_acks;
    Counter nodes_declared_dead;
    Counter failovers_executed;     ///< one per declared death
    Counter failover_spans_rerouted;
    Counter failover_bytes_rerouted;
    Counter failover_spans_lost;    ///< no live replica / TCAM refusal
    Counter rereplications;         ///< redundancy-restoring copies
    Counter recoveries;             ///< notify_recovered() calls
    Counter cutovers_observed;      ///< migration cutovers seen
};

/** One executed failover, for the availability bench. */
struct FailoverRecord
{
    NodeId node = kInvalidNode;
    Time declared_at = 0;   ///< death declared + routing re-installed
    std::uint64_t spans = 0;
    Bytes bytes = 0;
};

/** The assembled fault-tolerance plane. */
class ReplicationPlane
{
  public:
    ReplicationPlane(sim::EventQueue& queue, net::Network& network,
                     mem::GlobalMemory& memory,
                     mem::ClusterAllocator& allocator,
                     std::vector<mem::RangeTcam*> tcams,
                     std::vector<mem::ChannelSet*> channels,
                     const ReplicationConfig& config);

    const ReplicationConfig& config() const { return config_; }

    /**
     * Wire up the per-node accelerator dedup windows (indexed by
     * node). Required before traffic: replay-digest mirroring is what
     * makes exactly-once hold across a responder that died rather than
     * cooperatively cut over.
     */
    void attach_replay_windows(
        std::vector<accel::ReplayWindow*> windows);

    // -- accelerator hooks (null plane pointer = strict no-op) --------

    /** Mirror a store @p at applied to @p va into live replicas. */
    void mirror_store(NodeId at, VirtAddr va, const void* data,
                      Bytes len, Time now);

    /** Mirror a successful CAS (@p desired won) at @p va. */
    void mirror_cas(NodeId at, VirtAddr va, std::uint64_t desired,
                    Time now);

    /** A visit began executing on @p from: mark it in-progress in
     *  every other dedup window so a retransmit answered by a replica
     *  is suppressed instead of re-executed. */
    void mirror_mark(NodeId from,
                     const accel::ReplayWindow::Key& key);

    /** The visit completed on @p from: complete the mirrored entries
     *  so a retransmit replays @p response from any replica. */
    void mirror_response(NodeId from,
                         const accel::ReplayWindow::Key& key,
                         const net::TraversalPacket& response);

    /** The visit was dropped unexecuted on @p from: clear the mirrors
     *  so the retransmit is allowed to run. */
    void mirror_unmark(NodeId from,
                       const accel::ReplayWindow::Key& key);

    /**
     * Workload activity (an operation submission, a mirrored write):
     * re-arms the self-quiescing scan and probe loops. The cluster's
     * submit path calls this so the failure detector is watching
     * whenever operations are in flight — a blackout that starts
     * after traffic went fully idle is only noticed once traffic
     * (and with it, probing) resumes.
     */
    void note_activity();

    // -- nemesis / recovery -------------------------------------------

    /** The node healed (nemesis window ended): resume probing it and
     *  let the scan rebuild redundancy that involves it. */
    void notify_recovered(NodeId node);

    /**
     * A migration cutover moved [@p va_base, @p va_base + @p length)
     * from @p src to @p dst (wired through the placement plane's
     * cutover observer). Replica content is VA-indexed and mirrors
     * resolve the owner per write, so no replica data moves — the
     * plane just notes the ownership change and keeps its control
     * loops armed while placement churn is ongoing.
     */
    void notify_cutover(NodeId src, NodeId dst, VirtAddr va_base,
                        Bytes length);

    // -- introspection ------------------------------------------------

    /** Current phi-accrual suspicion level of @p node (0 when dead). */
    double suspicion(NodeId node) const;

    /** Node was declared dead and has not recovered. */
    bool is_dead(NodeId node) const;

    /** Bytes queued or in flight toward restoring the factor. */
    Bytes rereplication_backlog_bytes() const;

    /** Executed failovers, in order. */
    const std::vector<FailoverRecord>& failovers() const
    {
        return failover_log_;
    }

    /** Last time the plane considered every extent fully replicated
     *  (or, after a failover, re-routed) — the "restored" timestamp
     *  the availability bench reports. */
    Time last_restore_time() const { return last_restore_time_; }

    /** A replica copy is running or copies are queued. */
    bool busy() const
    {
        return active_.has_value() || !pending_.empty();
    }

    const ReplicationStats& stats() const { return stats_; }
    void reset_stats() { stats_ = ReplicationStats{}; }
    void register_stats(const std::string& prefix,
                        StatRegistry& registry);

  private:
    /** One live or in-flight copy of an extent. */
    struct Replica
    {
        NodeId node = kInvalidNode;
        Bytes phys = 0;
        bool live = false;
        /** Backing allocation failed; retried after topology changes. */
        bool abandoned = false;
    };

    /** A contiguous slice of one home region, replicated as a unit. */
    struct Extent
    {
        NodeId home = kInvalidNode;
        VirtAddr va_base = 0;
        Bytes length = 0;
        /** A replica has gone live at least once: later copies of this
         *  extent are redundancy restoration, not establishment. */
        bool established_once = false;
        std::vector<Replica> replicas;
    };

    /** The copy protocol's in-flight state (one copy at a time). */
    struct ActiveCopy
    {
        std::size_t extent = 0;   ///< index into extents_
        Bytes length = 0;
        NodeId src = kInvalidNode;
        NodeId dst = kInvalidNode;
        Bytes dst_phys = 0;
        bool rereplication = false;
        std::vector<bool> acked;
        std::size_t next_unsent = 0;
        std::size_t acked_count = 0;
        std::uint32_t retries = 0;
    };

    // control loops
    void arm_scan();
    void on_scan();
    void grow_extents();
    void plan_replication();
    void pump();
    void arm_probe();
    void on_probe_round();

    // copy protocol (the migration engine's COPY phase, re-targeted)
    Bytes chunk_offset(std::size_t chunk) const;
    Bytes chunk_length(std::size_t chunk) const;
    void send_chunk(std::size_t chunk, bool retransmit);
    void on_chunk_delivered(std::uint64_t generation,
                            std::size_t chunk);
    void on_copy_ack(std::uint64_t generation, std::size_t chunk);
    void arm_rto(std::size_t chunk);
    void finish_copy();
    void abort_copy();

    // failover
    void execute_failover(NodeId dead);
    std::vector<std::pair<VirtAddr, Bytes>> spans_owned_by(
        const Extent& extent, NodeId owner) const;

    Replica* live_replica(Extent& extent, NodeId excluding);
    Extent* extent_containing(VirtAddr va);

    sim::EventQueue& queue_;
    net::Network& network_;
    mem::GlobalMemory& memory_;
    mem::ClusterAllocator& allocator_;
    std::vector<mem::RangeTcam*> tcams_;
    std::vector<mem::ChannelSet*> channels_;
    ReplicationConfig config_;
    Rng rng_;
    net::HeartbeatDetector detector_;
    std::vector<accel::ReplayWindow*> replay_windows_;

    std::vector<Extent> extents_;
    /** Covered bytes per home (prefix of the region, extent-summed). */
    std::vector<Bytes> covered_;
    /** Queued copies: (extent index, target node). */
    std::deque<std::pair<std::size_t, NodeId>> pending_;
    std::optional<ActiveCopy> active_;
    /** Bumped when a copy ends; stale timers/acks become no-ops. */
    std::uint64_t generation_ = 0;

    bool scan_armed_ = false;
    bool probe_armed_ = false;
    bool scan_saw_traffic_ = false;
    bool probe_saw_traffic_ = false;

    std::vector<FailoverRecord> failover_log_;
    Time last_restore_time_ = 0;
    ReplicationStats stats_;
};

}  // namespace pulse::replication

#endif  // PULSE_REPLICATION_REPLICATION_PLANE_H
