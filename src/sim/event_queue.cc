#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace pulse::sim {

void
EventQueue::schedule_at(Time when, EventFn fn)
{
    PULSE_ASSERT(when >= now_,
                 "scheduling into the past (when=%lld now=%lld)",
                 static_cast<long long>(when),
                 static_cast<long long>(now_));
    heap_.push(Event{when, next_sequence_++, std::move(fn)});
}

void
EventQueue::schedule_after(Time delay, EventFn fn)
{
    PULSE_ASSERT(delay >= 0, "negative delay %lld",
                 static_cast<long long>(delay));
    schedule_at(now_ + delay, std::move(fn));
}

bool
EventQueue::step()
{
    if (heap_.empty()) {
        return false;
    }
    // priority_queue::top() is const; move out via const_cast is UB-free
    // here because we pop immediately and never reuse the slot.
    Event event = heap_.top();
    heap_.pop();
    now_ = event.when;
    executed_++;
    event.fn();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step()) {
        n++;
    }
    return n;
}

std::uint64_t
EventQueue::run_until(Time deadline)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
        step();
        n++;
    }
    if (now_ < deadline) {
        now_ = deadline;
    }
    return n;
}

bool
EventQueue::run_while_pending(const std::function<bool()>& predicate)
{
    while (!predicate()) {
        if (!step()) {
            return false;
        }
    }
    return true;
}

}  // namespace pulse::sim
