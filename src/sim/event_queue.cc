#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "check/invariants.h"
#include "common/logging.h"

namespace pulse::sim {

void
EventQueue::schedule_at(Time when, EventFn fn)
{
    PULSE_ASSERT(when >= now_,
                 "scheduling into the past (when=%lld now=%lld)",
                 static_cast<long long>(when),
                 static_cast<long long>(now_));
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        pool_[slot] = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(std::move(fn));
    }
    heap_.push(Entry{when, next_sequence_++, slot});
    peak_pending_ = std::max(peak_pending_, heap_.size());
}

void
EventQueue::schedule_after(Time delay, EventFn fn)
{
    PULSE_ASSERT(delay >= 0, "negative delay %lld",
                 static_cast<long long>(delay));
    schedule_at(now_ + delay, std::move(fn));
}

bool
EventQueue::step()
{
    if (heap_.empty()) {
        return false;
    }
    // top() is const and priority_queue has no "pop into a value", but
    // the entry is 24 bytes of plain data — copy it, then move the
    // callback out of its pool slot. The slot returns to the free list
    // *before* the callback runs so the callback may schedule into it;
    // the local `fn` is unaffected if pool_ reallocates meanwhile.
    const Entry entry = heap_.top();
    heap_.pop();
    if (invariants_ && entry.when < now_) {
        invariants_->report(check::Violation{
            .kind = check::InvariantKind::kClockMonotonicity,
            .when = now_,
            .component = "sim.event_queue",
            .message = "event at t=" + std::to_string(entry.when) +
                       " fired behind the clock (seq=" +
                       std::to_string(entry.sequence) + ")"});
    }
    now_ = entry.when;
    executed_++;
    EventFn fn = std::move(pool_[entry.slot]);
    free_slots_.push_back(entry.slot);
    fn();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step()) {
        n++;
    }
    return n;
}

std::uint64_t
EventQueue::run_until(Time deadline)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
        step();
        n++;
    }
    if (now_ < deadline) {
        now_ = deadline;
    }
    return n;
}

bool
EventQueue::run_while_pending(const std::function<bool()>& predicate)
{
    while (!predicate()) {
        if (!step()) {
            return false;
        }
    }
    return true;
}

}  // namespace pulse::sim
