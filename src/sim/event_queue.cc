#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "check/invariants.h"
#include "common/env_knobs.h"
#include "common/logging.h"

namespace pulse::sim {

EventQueue::EventQueue() : coalescing_(pooling_enabled()) {}

std::uint32_t
EventQueue::acquire_slot(EventFn&& fn)
{
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        pool_[slot] = std::move(fn);
        chain_next_[slot] = kNilSlot;
    } else {
        slot = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(std::move(fn));
        chain_next_.push_back(kNilSlot);
    }
    return slot;
}

void
EventQueue::schedule_at(Time when, EventFn fn)
{
    PULSE_ASSERT(when >= now_,
                 "scheduling into the past (when=%lld now=%lld)",
                 static_cast<long long>(when),
                 static_cast<long long>(now_));
    const std::uint32_t slot = acquire_slot(std::move(fn));
    const std::uint64_t sequence = next_sequence_++;
    if (coalescing_) {
        ChainRef& ref = chains_[chain_index(when)];
        if (ref.when == when && ref.head != kNilSlot) {
            // An earlier event at this exact timestamp is still
            // heaped: append instead of paying a heap push. The
            // append's sequence exceeds every sequence already in the
            // chain (the counter is monotone), and any chain heaped
            // later for this timestamp starts at a yet higher
            // sequence, so FIFO order among equal timestamps is
            // preserved exactly.
            chain_next_[ref.tail] = slot;
            ref.tail = slot;
            coalesced_++;
        } else {
            ref = ChainRef{when, slot, slot};
            heap_.push(Entry{when, sequence, slot});
        }
    } else {
        heap_.push(Entry{when, sequence, slot});
    }
    pending_++;
    peak_pending_ = std::max(peak_pending_, pending_);
}

void
EventQueue::schedule_after(Time delay, EventFn fn)
{
    PULSE_ASSERT(delay >= 0, "negative delay %lld",
                 static_cast<long long>(delay));
    schedule_at(now_ + delay, std::move(fn));
}

bool
EventQueue::step()
{
    std::uint32_t slot;
    if (drain_next_ != kNilSlot) {
        // Continue draining the chain popped earlier; every event in
        // it shares the already-installed clock value.
        slot = drain_next_;
    } else {
        if (heap_.empty()) {
            return false;
        }
        // top() is const and priority_queue has no "pop into a value",
        // but the entry is 24 bytes of plain data — copy it, then move
        // the callback out of its pool slot.
        const Entry entry = heap_.top();
        heap_.pop();
        if (invariants_ && entry.when < now_) {
            invariants_->report(check::Violation{
                .kind = check::InvariantKind::kClockMonotonicity,
                .when = now_,
                .component = "sim.event_queue",
                .message = "event at t=" + std::to_string(entry.when) +
                           " fired behind the clock (seq=" +
                           std::to_string(entry.sequence) + ")"});
        }
        // Close the chain before running anything: events scheduled at
        // this same timestamp during the drain must start a fresh
        // chain (heaped behind the one being drained). A slot is only
        // recycled after its chain element executes, so head-slot
        // equality uniquely identifies this chain's cache entry.
        ChainRef& ref = chains_[chain_index(entry.when)];
        if (ref.head == entry.slot) {
            ref = ChainRef{};
        }
        now_ = entry.when;
        if (chain_next_[entry.slot] != kNilSlot) {
            batches_++;
        }
        slot = entry.slot;
    }
    drain_next_ = chain_next_[slot];
    executed_++;
    pending_--;
    // The slot returns to the free list *before* the callback runs so
    // the callback may schedule into it; the local `fn` is unaffected
    // if pool_ reallocates meanwhile.
    EventFn fn = std::move(pool_[slot]);
    chain_next_[slot] = kNilSlot;
    free_slots_.push_back(slot);
    fn();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step()) {
        n++;
    }
    return n;
}

std::uint64_t
EventQueue::run_until(Time deadline)
{
    std::uint64_t n = 0;
    // A chain mid-drain is at now_ <= deadline by construction, so it
    // never outruns the deadline check.
    while (drain_next_ != kNilSlot ||
           (!heap_.empty() && heap_.top().when <= deadline)) {
        step();
        n++;
    }
    if (now_ < deadline) {
        now_ = deadline;
    }
    return n;
}

bool
EventQueue::run_while_pending(const std::function<bool()>& predicate)
{
    while (!predicate()) {
        if (!step()) {
            return false;
        }
    }
    return true;
}

void
EventQueue::set_coalescing(bool enabled)
{
    coalescing_ = enabled;
    // Drop cached chain refs: after a disable/enable cycle they could
    // name slots that have since been recycled.
    chains_.fill(ChainRef{});
}

EventQueue::QuiesceState
EventQueue::quiesce_state() const
{
    PULSE_ASSERT(pending_ == 0,
                 "checkpoint requires a quiesced queue (%zu pending)",
                 pending_);
    return QuiesceState{now_, next_sequence_, executed_};
}

void
EventQueue::restore_quiesce(const QuiesceState& state)
{
    PULSE_ASSERT(pending_ == 0,
                 "restore requires a quiesced queue (%zu pending)",
                 pending_);
    PULSE_ASSERT(state.now >= now_,
                 "restore would move the clock backwards");
    now_ = state.now;
    next_sequence_ = state.scheduled;
    executed_ = state.executed;
    chains_.fill(ChainRef{});
    drain_next_ = kNilSlot;
}

}  // namespace pulse::sim
