/**
 * @file
 * Discrete-event simulation core.
 *
 * Every timed component in pulse (links, switch, accelerator pipelines,
 * CPU models) schedules callbacks on a shared EventQueue. Events at equal
 * timestamps execute in FIFO insertion order, which keeps simulations
 * deterministic for a given seed and schedule.
 *
 * Hot-path layout: the binary heap orders 24-byte plain-data entries
 * {when, sequence, slot}; the callbacks themselves live in a pooled
 * slot array and never move while queued. Heap sift operations
 * therefore shuffle trivially-copyable entries instead of type-erased
 * callables, and a drained slot is recycled through a free list — so
 * steady-state scheduling performs no allocation at all. Callbacks are
 * InlineFunction (see inline_function.h): capture state is stored
 * inline, with oversized captures rejected at compile time rather than
 * silently heap-allocated.
 */
#ifndef PULSE_SIM_EVENT_QUEUE_H
#define PULSE_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/inline_function.h"

namespace pulse::check {
class InvariantRegistry;
}

namespace pulse::sim {

/**
 * Inline capture budget for event callbacks, in bytes. Sized for the
 * largest capture the simulator schedules: a network delivery thunk
 * [this, &sink, packet] carrying a TraversalPacket by value. Growing a
 * capture past this is a compile-time error at the schedule site —
 * bump the budget deliberately rather than letting the hot path regress
 * to heap allocation.
 */
inline constexpr std::size_t kEventInlineCapacity = 152;

/** Callback executed when an event fires. */
using EventFn = InlineFunction<kEventInlineCapacity>;

/**
 * Time-ordered event queue with a monotonically advancing clock.
 *
 * This is a classic calendar-free binary-heap event queue: adequate for
 * the rack-scale models here (tens of components, millions of events).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void schedule_at(Time when, EventFn fn);

    /** Schedule @p fn to run @p delay after the current time. */
    void schedule_after(Time delay, EventFn fn);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Execute the earliest pending event, advancing the clock to its
     * timestamp. Returns false when the queue is empty.
     */
    bool step();

    /** Run until the queue drains. Returns the number of events run. */
    std::uint64_t run();

    /**
     * Run until the clock would pass @p deadline; events at exactly
     * @p deadline still execute. Returns the number of events run.
     *
     * Clock contract: on return now() == max(now(), @p deadline) even
     * when the queue drains before the deadline (or was empty to begin
     * with). Draining must not leave the clock at the last event's
     * timestamp: fixed-interval measurement windows (bandwidth over a
     * window, periodic fault scripts, back-to-back run_until calls)
     * rely on every window advancing the clock by its full span, and a
     * subsequent schedule_after() must anchor at the window end, not
     * mid-window. Events already at timestamps beyond the deadline
     * stay pending and now() stays at @p deadline — strictly behind
     * heap_.top().when — so no event ever fires in its past.
     */
    std::uint64_t run_until(Time deadline);

    /**
     * Run until @p predicate() becomes true (checked after each event)
     * or the queue drains. Returns true if the predicate was met.
     */
    bool run_while_pending(const std::function<bool()>& predicate);

    /** Total events executed since construction. */
    std::uint64_t events_executed() const { return executed_; }

    /** Total events scheduled since construction. */
    std::uint64_t events_scheduled() const { return next_sequence_; }

    /** High-water mark of simultaneously pending events. */
    std::size_t peak_pending() const { return peak_pending_; }

    /**
     * Callback slots ever allocated (pool high-water). Steady state
     * allocates nothing: slots recycle through the free list, so this
     * converges to peak_pending() and stays there.
     */
    std::size_t pool_slots() const { return pool_.size(); }

    /**
     * Attach an invariant registry (nullptr detaches). When present,
     * step() cross-checks clock monotonicity against the popped entry
     * — a safety net under the heap ordering itself, which the
     * schedule_at() precondition cannot cover.
     */
    void set_invariants(check::InvariantRegistry* registry)
    {
        invariants_ = registry;
    }

  private:
    /**
     * Heap entry: plain data only. The callback lives in pool_[slot]
     * and is moved out exactly once, when the entry is popped — the
     * heap's sift operations never touch callable state.
     */
    struct Entry
    {
        Time when;
        std::uint64_t sequence;  // FIFO tiebreak for equal timestamps
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<EventFn> pool_;
    std::vector<std::uint32_t> free_slots_;
    Time now_ = 0;
    check::InvariantRegistry* invariants_ = nullptr;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t peak_pending_ = 0;
};

}  // namespace pulse::sim

#endif  // PULSE_SIM_EVENT_QUEUE_H
