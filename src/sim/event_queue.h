/**
 * @file
 * Discrete-event simulation core.
 *
 * Every timed component in pulse (links, switch, accelerator pipelines,
 * CPU models) schedules callbacks on a shared EventQueue. Events at equal
 * timestamps execute in FIFO insertion order, which keeps simulations
 * deterministic for a given seed and schedule.
 *
 * Hot-path layout: the binary heap orders 24-byte plain-data entries
 * {when, sequence, slot}; the callbacks themselves live in a pooled
 * slot array and never move while queued. Heap sift operations
 * therefore shuffle trivially-copyable entries instead of type-erased
 * callables, and a drained slot is recycled through a free list — so
 * steady-state scheduling performs no allocation at all. Callbacks are
 * InlineFunction (see inline_function.h): capture state is stored
 * inline, with oversized captures rejected at compile time rather than
 * silently heap-allocated.
 *
 * Same-timestamp batching: bursty components (links draining a busy
 * period, switch ports, DRAM channels, the accelerator's net-stack
 * stages) frequently schedule many events at one identical timestamp.
 * Instead of paying a heap push/pop per event, schedule_at() chains
 * such events onto the pending event already heaped at that timestamp
 * (via a small direct-mapped timestamp cache) and step() drains the
 * chain one event per call. Execution order is provably unchanged:
 * chain appends carry strictly increasing sequence numbers, chains for
 * one timestamp occupy disjoint, heap-ordered sequence ranges, and the
 * cache entry is invalidated when its chain's head is popped so events
 * scheduled *during* a drain start a fresh (later) chain. The
 * coalescing_ flag (PULSE_POOLING) exists as a live differential
 * check, not a semantic switch.
 */
#ifndef PULSE_SIM_EVENT_QUEUE_H
#define PULSE_SIM_EVENT_QUEUE_H

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/inline_function.h"

namespace pulse::check {
class InvariantRegistry;
}

namespace pulse::sim {

/**
 * Inline capture budget for event callbacks, in bytes. Sized for the
 * largest capture the simulator schedules: a network delivery thunk
 * [this, &sink, packet] carrying a TraversalPacket by value — a
 * trivially-copyable block that holds the inline scratch pad
 * (common/scratch_buffer.h, ~500 B) plus the fork/join SpawnList
 * (net/packet.h: kMaxSpawnsPerVisit records of ~48 B each) and spawn
 * lineage fields, ~950 B total. Growing a capture past this is a
 * compile-time error at the schedule site — bump the budget
 * deliberately rather than letting the hot path regress to heap
 * allocation.
 */
inline constexpr std::size_t kEventInlineCapacity = 1088;

/** Callback executed when an event fires. */
using EventFn = InlineFunction<kEventInlineCapacity>;

/**
 * Time-ordered event queue with a monotonically advancing clock.
 *
 * This is a classic calendar-free binary-heap event queue: adequate for
 * the rack-scale models here (tens of components, millions of events).
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void schedule_at(Time when, EventFn fn);

    /** Schedule @p fn to run @p delay after the current time. */
    void schedule_after(Time delay, EventFn fn);

    /** Number of pending events. */
    std::size_t pending() const { return pending_; }

    /** True when no events remain. */
    bool empty() const { return pending_ == 0; }

    /**
     * Execute the earliest pending event, advancing the clock to its
     * timestamp. Returns false when the queue is empty.
     */
    bool step();

    /** Run until the queue drains. Returns the number of events run. */
    std::uint64_t run();

    /**
     * Run until the clock would pass @p deadline; events at exactly
     * @p deadline still execute. Returns the number of events run.
     *
     * Clock contract: on return now() == max(now(), @p deadline) even
     * when the queue drains before the deadline (or was empty to begin
     * with). Draining must not leave the clock at the last event's
     * timestamp: fixed-interval measurement windows (bandwidth over a
     * window, periodic fault scripts, back-to-back run_until calls)
     * rely on every window advancing the clock by its full span, and a
     * subsequent schedule_after() must anchor at the window end, not
     * mid-window. Events already at timestamps beyond the deadline
     * stay pending and now() stays at @p deadline — strictly behind
     * heap_.top().when — so no event ever fires in its past.
     */
    std::uint64_t run_until(Time deadline);

    /**
     * Run until @p predicate() becomes true (checked after each event)
     * or the queue drains. Returns true if the predicate was met.
     */
    bool run_while_pending(const std::function<bool()>& predicate);

    /** Total events executed since construction. */
    std::uint64_t events_executed() const { return executed_; }

    /** Total events scheduled since construction. */
    std::uint64_t events_scheduled() const { return next_sequence_; }

    /** High-water mark of simultaneously pending events. */
    std::size_t peak_pending() const { return peak_pending_; }

    /**
     * Callback slots ever allocated (pool high-water). Steady state
     * allocates nothing: slots recycle through the free list, so this
     * converges to peak_pending() and stays there.
     */
    std::size_t pool_slots() const { return pool_.size(); }

    /**
     * Events that joined an already-heaped same-timestamp chain
     * instead of paying their own heap push/pop.
     */
    std::uint64_t events_coalesced() const { return coalesced_; }

    /** Heap pops that drained a multi-event chain. */
    std::uint64_t batches_drained() const { return batches_; }

    /**
     * Enable/disable same-timestamp batching (defaults to the
     * PULSE_POOLING environment knob). Execution order is identical
     * either way; the switch exists as a differential check. Resets
     * the timestamp cache, so it is safe to flip at any quiesce point
     * (and between events in general).
     */
    void set_coalescing(bool enabled);

    /**
     * Attach an invariant registry (nullptr detaches). When present,
     * step() cross-checks clock monotonicity against the popped entry
     * — a safety net under the heap ordering itself, which the
     * schedule_at() precondition cannot cover.
     */
    void set_invariants(check::InvariantRegistry* registry)
    {
        invariants_ = registry;
    }

    /**
     * Checkpoint support (core/checkpoint.h). Only a *quiesced* queue
     * — no pending events — can be captured or restored: in-flight
     * callbacks are type-erased closures over live component state and
     * are deliberately not serializable. Restoring the schedule/
     * execute counters keeps continuation-run telemetry bit-identical
     * to the uninterrupted run.
     */
    struct QuiesceState
    {
        Time now = 0;
        std::uint64_t scheduled = 0;
        std::uint64_t executed = 0;
    };

    QuiesceState quiesce_state() const;
    void restore_quiesce(const QuiesceState& state);

  private:
    /**
     * Heap entry: plain data only. The callback lives in pool_[slot]
     * and is moved out exactly once, when the entry is popped — the
     * heap's sift operations never touch callable state. `slot` heads
     * a chain of same-timestamp events linked through chain_next_.
     */
    struct Entry
    {
        Time when;
        std::uint64_t sequence;  // FIFO tiebreak for equal timestamps
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.sequence > b.sequence;
        }
    };

    static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
    static constexpr std::size_t kChainCacheSize = 64;

    /** Open chain per cached timestamp (direct-mapped). */
    struct ChainRef
    {
        Time when = -1;  // schedule_at rejects negative times
        std::uint32_t head = kNilSlot;
        std::uint32_t tail = kNilSlot;
    };

    static std::size_t
    chain_index(Time when)
    {
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(when) * 0x9E3779B97F4A7C15ull) >>
            58);
    }

    std::uint32_t acquire_slot(EventFn&& fn);

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<EventFn> pool_;
    /** Next slot in the same-timestamp chain (kNilSlot = end). */
    std::vector<std::uint32_t> chain_next_;
    std::vector<std::uint32_t> free_slots_;
    std::array<ChainRef, kChainCacheSize> chains_;
    Time now_ = 0;
    check::InvariantRegistry* invariants_ = nullptr;
    std::uint64_t next_sequence_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
    std::size_t peak_pending_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t batches_ = 0;
    /** Chain tail still to drain from the last popped heap entry. */
    std::uint32_t drain_next_ = kNilSlot;
    bool coalescing_ = true;
};

}  // namespace pulse::sim

#endif  // PULSE_SIM_EVENT_QUEUE_H
