/**
 * @file
 * Small-buffer-optimized, move-only callable for the event hot path.
 *
 * The event loop schedules millions of callbacks per simulated run.
 * With `std::function`, each capture larger than the implementation's
 * small-object buffer (16-32 bytes on mainstream stdlibs — smaller
 * than a TraversalPacket capture) costs one heap allocation on
 * schedule and one deallocation on execute, plus an indirect call
 * through the allocated block. InlineFunction eliminates that traffic:
 * the capture is constructed directly into inline storage sized for
 * the largest capture the simulator actually creates, and oversized
 * captures are a *compile-time* error rather than a silent heap
 * fallback — so the no-allocation property is enforced, not hoped for.
 *
 * Differences from std::function, on purpose:
 *   - move-only (events fire once; copyability would forbid move-only
 *     captures and invite accidental deep copies of packet payloads);
 *   - void() signature only (all events are thunks);
 *   - no allocation, ever: sizeof(capture) must fit Capacity and its
 *     alignment must not exceed alignof(std::max_align_t).
 */
#ifndef PULSE_SIM_INLINE_FUNCTION_H
#define PULSE_SIM_INLINE_FUNCTION_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pulse::sim {

/** Move-only `void()` callable with @p Capacity bytes of inline
 *  storage and no heap fallback. */
template <std::size_t Capacity>
class InlineFunction
{
  public:
    static constexpr std::size_t capacity = Capacity;

    InlineFunction() = default;

    template <typename Fn,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<Fn>, InlineFunction>>>
    InlineFunction(Fn&& fn)  // NOLINT: implicit like std::function
    {
        using Decayed = std::decay_t<Fn>;
        static_assert(sizeof(Decayed) <= Capacity,
                      "capture exceeds InlineFunction storage; grow "
                      "Capacity or shrink the capture");
        static_assert(alignof(Decayed) <= alignof(std::max_align_t),
                      "over-aligned capture");
        static_assert(std::is_invocable_r_v<void, Decayed&>,
                      "callable must be invocable as void()");
        ::new (static_cast<void*>(storage_))
            Decayed(std::forward<Fn>(fn));
        invoke_ = [](void* target) {
            (*std::launder(reinterpret_cast<Decayed*>(target)))();
        };
        manage_ = [](ManageOp op, void* self, void* other) {
            auto* from =
                std::launder(reinterpret_cast<Decayed*>(other));
            switch (op) {
                case ManageOp::kMoveFrom:
                    ::new (self) Decayed(std::move(*from));
                    from->~Decayed();
                    break;
                case ManageOp::kDestroy:
                    std::launder(reinterpret_cast<Decayed*>(self))
                        ->~Decayed();
                    break;
            }
        };
    }

    InlineFunction(InlineFunction&& other) noexcept { steal(other); }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            steal(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return invoke_ != nullptr; }

    /** Invoke the held callable (undefined when empty, like moving
     *  from: the event loop never invokes an empty slot). */
    void
    operator()()
    {
        invoke_(storage_);
    }

  private:
    enum class ManageOp { kMoveFrom, kDestroy };

    using InvokeFn = void (*)(void*);
    using ManageFn = void (*)(ManageOp, void* self, void* other);

    void
    reset()
    {
        if (manage_ != nullptr) {
            manage_(ManageOp::kDestroy, storage_, nullptr);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

    /** Move @p other's callable into empty *this; leaves it empty. */
    void
    steal(InlineFunction& other)
    {
        if (other.manage_ != nullptr) {
            other.manage_(ManageOp::kMoveFrom, storage_,
                          other.storage_);
            invoke_ = other.invoke_;
            manage_ = other.manage_;
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity];
    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;
};

}  // namespace pulse::sim

#endif  // PULSE_SIM_INLINE_FUNCTION_H
