/**
 * @file
 * Cluster-level checkpoint/restore (see Cluster::save_checkpoint).
 *
 * A checkpoint is a single tagged binary blob (common/serial.h):
 *
 *   "PLSC" magic + format version
 *   config fingerprint        — topology/policy/seed scalars, asserted
 *                               equal on restore so a snapshot can only
 *                               be applied to an identically-built rack
 *   event queue quiesce state — clock + schedule/execute counters
 *   network                   — switch tables, ports, loss RNG, flow
 *   global memory             — committed chunks of every node
 *   allocator                 — bump frontiers, free lists, RNG
 *   per-node channel sets     — busy-until + bandwidth counters
 *   per-node accelerators     — TCAMs, pipeline clocks, counters
 *   per-client offload engines— sequence numbers, RTO, code-send cache
 *
 * Only a *quiesced* cluster can be captured: pending events and
 * in-flight traversals are type-erased closures over live component
 * state and are deliberately not serializable. Quiesce is cheap to
 * reach (drain the queue between driver phases) and is exactly the
 * boundary long scenarios want to fork from.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/serial.h"
#include "core/cluster.h"

namespace pulse::core {
namespace {

constexpr std::uint32_t kCheckpointVersion = 1;

void
put_fingerprint(StateWriter& writer, const ClusterConfig& config)
{
    writer.put_u32(config.num_mem_nodes);
    writer.put_u32(config.num_clients);
    writer.put_u64(config.node_capacity);
    writer.put_u8(static_cast<std::uint8_t>(config.alloc_policy));
    writer.put_u64(config.uniform_chunk_bytes);
    writer.put_u64(config.seed);
    writer.put_u32(config.channels_per_node);
    writer.put_u32(config.accel.num_cores);
    writer.put_u32(config.accel.eta_pipelines);
    writer.put_u32(config.accel.workspaces_per_logic);
    writer.put_u32(config.accel.tcam_entries);
    writer.put_u32(config.accel.replay_window_entries);
    writer.put_bool(config.accel.forward_via_switch);
    writer.put_bool(config.offload.switch_continuation);
    writer.put_u32(config.offload.max_retransmits);
}

void
check_fingerprint(StateReader& reader, const ClusterConfig& config)
{
    PULSE_ASSERT(reader.get_u32() == config.num_mem_nodes &&
                     reader.get_u32() == config.num_clients &&
                     reader.get_u64() == config.node_capacity &&
                     reader.get_u8() ==
                         static_cast<std::uint8_t>(config.alloc_policy) &&
                     reader.get_u64() == config.uniform_chunk_bytes &&
                     reader.get_u64() == config.seed &&
                     reader.get_u32() == config.channels_per_node &&
                     reader.get_u32() == config.accel.num_cores &&
                     reader.get_u32() == config.accel.eta_pipelines &&
                     reader.get_u32() ==
                         config.accel.workspaces_per_logic &&
                     reader.get_u32() == config.accel.tcam_entries &&
                     reader.get_u32() ==
                         config.accel.replay_window_entries &&
                     reader.get_bool() ==
                         config.accel.forward_via_switch &&
                     reader.get_bool() ==
                         config.offload.switch_continuation &&
                     reader.get_u32() == config.offload.max_retransmits,
                 "checkpoint config fingerprint mismatch: snapshot was "
                 "taken on a differently-configured cluster");
}

}  // namespace

std::vector<std::uint8_t>
Cluster::save_checkpoint() const
{
    PULSE_ASSERT(queue_.empty(),
                 "checkpoint requires a quiesced event queue "
                 "(%zu events pending)",
                 queue_.pending());
    PULSE_ASSERT(!fault_plane_ && !checker_ && !placement_plane_ &&
                     !replication_plane_ && !serve_plane_,
                 "checkpoint does not cover the optional planes; build "
                 "the cluster with faults/check/placement/replication/"
                 "serving off");
    PULSE_ASSERT(!tracer_.enabled(),
                 "checkpoint does not cover live trace spans; disable "
                 "tracing first");
    PULSE_ASSERT(memory_->address_map().remaps().empty(),
                 "checkpoint does not cover migration remap overlays");
    for (const auto& engine : offload_) {
        PULSE_ASSERT(engine->inflight() == 0,
                     "checkpoint requires no in-flight traversals");
    }

    StateWriter writer;
    writer.put_tag("PLSC");
    writer.put_u32(kCheckpointVersion);
    put_fingerprint(writer, config_);

    const sim::EventQueue::QuiesceState queue_state =
        queue_.quiesce_state();
    writer.put_i64(queue_state.now);
    writer.put_u64(queue_state.scheduled);
    writer.put_u64(queue_state.executed);

    network_->save_state(writer);
    memory_->save_state(writer);
    allocator_->save_state(writer);
    for (const auto& channels : channels_) {
        channels->save_state(writer);
    }
    for (const auto& accelerator : accelerators_) {
        accelerator->save_state(writer);
    }
    for (const auto& engine : offload_) {
        engine->save_state(writer);
    }
    return writer.take();
}

void
Cluster::restore_checkpoint(const std::vector<std::uint8_t>& bytes)
{
    PULSE_ASSERT(queue_.empty(),
                 "restore requires a quiesced event queue "
                 "(%zu events pending)",
                 queue_.pending());
    PULSE_ASSERT(!fault_plane_ && !checker_ && !placement_plane_ &&
                     !replication_plane_ && !serve_plane_,
                 "restore target must have the optional planes off");
    PULSE_ASSERT(memory_->address_map().remaps().empty(),
                 "restore target must have no migration remaps");

    StateReader reader(bytes);
    reader.expect_tag("PLSC");
    const std::uint32_t version = reader.get_u32();
    PULSE_ASSERT(version == kCheckpointVersion,
                 "unsupported checkpoint version %u", version);
    check_fingerprint(reader, config_);

    sim::EventQueue::QuiesceState queue_state;
    queue_state.now = reader.get_i64();
    queue_state.scheduled = reader.get_u64();
    queue_state.executed = reader.get_u64();
    queue_.restore_quiesce(queue_state);

    network_->load_state(reader);
    memory_->load_state(reader);
    allocator_->load_state(reader);
    for (auto& channels : channels_) {
        channels->load_state(reader);
    }
    for (auto& accelerator : accelerators_) {
        accelerator->load_state(reader);
    }
    for (auto& engine : offload_) {
        engine->load_state(reader);
    }
    PULSE_ASSERT(reader.done(),
                 "trailing bytes after checkpoint restore "
                 "(%zu unread)",
                 reader.remaining());
}

void
Cluster::save_checkpoint_file(const std::string& path) const
{
    const std::vector<std::uint8_t> blob = save_checkpoint();
    std::FILE* file = std::fopen(path.c_str(), "wb");
    PULSE_ASSERT(file != nullptr, "cannot open checkpoint file %s",
                 path.c_str());
    const std::size_t written =
        std::fwrite(blob.data(), 1, blob.size(), file);
    std::fclose(file);
    PULSE_ASSERT(written == blob.size(),
                 "short write to checkpoint file %s", path.c_str());
}

void
Cluster::restore_checkpoint_file(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    PULSE_ASSERT(file != nullptr, "cannot open checkpoint file %s",
                 path.c_str());
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    PULSE_ASSERT(size >= 0, "cannot stat checkpoint file %s",
                 path.c_str());
    std::fseek(file, 0, SEEK_SET);
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
    const std::size_t read = std::fread(blob.data(), 1, blob.size(), file);
    std::fclose(file);
    PULSE_ASSERT(read == blob.size(),
                 "short read from checkpoint file %s", path.c_str());
    restore_checkpoint(blob);
}

}  // namespace pulse::core
