/**
 * @file
 * The pulse cluster façade: one object that assembles the simulated
 * rack (section 6's testbed) and exposes every compared system behind
 * a single submit interface.
 *
 * Components wired together:
 *   - discrete-event queue and rack network (clients + switch + memory
 *     nodes);
 *   - disaggregated memory with per-node DRAM channels (25 GB/s cap);
 *   - pulse accelerators (one per memory node) with their TCAMs, plus
 *     the switch's one-rule-per-node cur_ptr table (section 5);
 *   - the client offload engine (pulse / pulse-ACC per config);
 *   - all baselines: Cache-based (page cache), RPC, RPC-W, Cache+RPC.
 *
 * Benches pick a system via submitter(SystemKind) and drive it with
 * the workload driver; every system executes the same ISA operations
 * over the same memory bytes, so results are directly comparable.
 */
#ifndef PULSE_CORE_CLUSTER_H
#define PULSE_CORE_CLUSTER_H

#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "baselines/aifm_client.h"
#include "baselines/cache_client.h"
#include "baselines/rpc_runtime.h"
#include "check/check_config.h"
#include "check/checker.h"
#include "common/stats.h"
#include "faults/fault_plane.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "mem/memory_channel.h"
#include "net/network.h"
#include "offload/offload_engine.h"
#include "placement/placement_config.h"
#include "placement/placement_plane.h"
#include "replication/replication_config.h"
#include "replication/replication_plane.h"
#include "serve/qos.h"
#include "serve/serve_config.h"
#include "sim/event_queue.h"
#include "trace/metrics_exporter.h"
#include "trace/trace.h"
#include "workloads/driver.h"

namespace pulse::core {

/** Which execution system serves a submitted operation. */
enum class SystemKind {
    kPulse,     ///< accelerator offload (pulse or pulse-ACC per config)
    kCache,     ///< Cache-based (Fastswap-like page cache)
    kRpc,       ///< RPC on memory-node CPUs (eRPC-like)
    kRpcWimpy,  ///< RPC on down-clocked (wimpy) cores
    kCacheRpc,  ///< Cache+RPC (AIFM-like object cache + TCP transport)
};

/** Human-readable system name (bench tables). */
const char* system_name(SystemKind kind);

/** Whole-rack configuration. */
struct ClusterConfig
{
    std::uint32_t num_mem_nodes = 1;
    std::uint32_t num_clients = 1;
    Bytes node_capacity = 512 * kMiB;
    mem::AllocPolicy alloc_policy = mem::AllocPolicy::kPartitioned;

    /** Uniform-policy slab granularity (0 = per-allocation random;
     *  see ClusterAllocator). */
    Bytes uniform_chunk_bytes = 8 * kKiB;

    std::uint64_t seed = 42;

    /** Memory channels: 2 x 17 GB/s raw; the vendor interconnect IP
     *  caps the effective node bandwidth at 25 GB/s (section 6 +
     *  supp. Fig. 1b). */
    std::uint32_t channels_per_node = 2;
    Rate channel_raw_bw = gbps_bytes(17.0);
    double interconnect_efficiency = 12.5 / 17.0;

    accel::AccelConfig accel;
    offload::OffloadConfig offload;
    net::NetworkConfig network;  // endpoint counts filled in by Cluster
    baselines::CacheClientConfig cache;
    baselines::RpcConfig rpc;
    baselines::RpcConfig rpc_wimpy;
    baselines::AifmConfig aifm;

    /**
     * Fault-injection plan (chaos testing / robustness ablations). The
     * default is all-quiet: no FaultPlane is even constructed, so the
     * fault path is a strict no-op and healthy runs stay bit-identical
     * to a build without the fault plane.
     */
    faults::FaultConfig faults;

    /**
     * Per-request tracing (src/trace). Off by default: span recording
     * is synchronous and draws no randomness, so results are identical
     * either way, but the disabled path is a single branch.
     */
    trace::TraceConfig trace;

    /**
     * Correctness checking (src/check): golden differential oracle on
     * the pulse path and/or structural invariant checking. All off by
     * default — no Checker is constructed, no submitter is wrapped,
     * and no randomness or timing changes, so checker-off runs are
     * bit-identical to a build without the subsystem. Benches honor
     * the PULSE_CHECK environment variable (see CheckConfig).
     */
    check::CheckConfig check;

    /**
     * Elastic placement plane (src/placement): hotness tracking, live
     * slab migration, online switch/TCAM reconfiguration. Off by
     * default — no plane is constructed, accelerators keep a null
     * placement pointer, and no stats keys are registered, so
     * placement-off runs stay bit-identical to a build without the
     * subsystem. Benches honor the PULSE_PLACEMENT environment
     * variable (see PlacementConfig).
     */
    placement::PlacementConfig placement;

    /**
     * Fault-tolerance plane (src/replication): k-way slab replication,
     * heartbeat failure detection, automatic failover. Off by default
     * (replication factor 1) — no plane is constructed, accelerators
     * keep a null replication pointer, and no stats keys are
     * registered, so replication-off runs stay bit-identical to a
     * build without the subsystem. Benches honor the PULSE_REPLICATION
     * environment variable (see ReplicationConfig).
     */
    replication::ReplicationConfig replication;

    /**
     * Multi-tenant serving plane (src/serve): per-tenant token-bucket
     * quotas, SLO classes with queue-depth caps and load shedding, and
     * WDRR admission weights. Off by default — no QosController is
     * constructed, accelerators keep a null serving pointer, and no
     * stats keys are registered, so serving-off runs stay bit-identical
     * to a build without the subsystem. Benches honor the PULSE_SERVING
     * environment variable (see ServeConfig).
     */
    serve::ServeConfig serve;

    ClusterConfig();

    /** Configure pulse-ACC (section 7.2): continuations bounce through
     *  the client instead of the switch. */
    void
    set_pulse_acc(bool acc)
    {
        accel.forward_via_switch = !acc;
        offload.switch_continuation = !acc;
    }
};

/** The assembled rack. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig& config);

    sim::EventQueue& queue() { return queue_; }
    mem::GlobalMemory& memory() { return *memory_; }
    mem::ClusterAllocator& allocator() { return *allocator_; }
    net::Network& network() { return *network_; }
    accel::Accelerator& accelerator(NodeId node);
    mem::ChannelSet& channels(NodeId node);

    /** Offload engine of client @p client (one per CPU node). */
    offload::OffloadEngine& offload_engine(ClientId client = 0);
    baselines::CacheClient& cache_client() { return *cache_; }
    baselines::RpcRuntime& rpc(bool wimpy = false);

    /** The TCP-transport RPC runtime behind Cache+RPC. */
    baselines::RpcRuntime& rpc_tcp() { return *rpc_tcp_; }

    baselines::AifmClient& aifm() { return *aifm_; }

    /** The fault-injection plane; nullptr when faults are all-quiet. */
    faults::FaultPlane* fault_plane() { return fault_plane_.get(); }

    /** The per-cluster span tracer (always present; may be disabled). */
    trace::Tracer& tracer() { return tracer_; }
    const trace::Tracer& tracer() const { return tracer_; }

    /** The checking subsystem; nullptr when config.check is all-off. */
    check::Checker* checker() { return checker_.get(); }

    /** The placement plane; nullptr when config.placement is off. */
    placement::PlacementPlane* placement_plane()
    {
        return placement_plane_.get();
    }

    /** The replication plane; nullptr when config.replication is off. */
    replication::ReplicationPlane* replication_plane()
    {
        return replication_plane_.get();
    }

    /** The serving plane's QoS controller; nullptr when off. */
    serve::QosController* serve_plane() { return serve_plane_.get(); }

    /**
     * Drain the event queue, then run the quiesce-time structural
     * audit (conservation, leaks, route agreement). No-op returning 0
     * when checking is off. Returns the total violation count.
     */
    std::uint64_t verify_quiesce();

    const ClusterConfig& config() const { return config_; }

    /**
     * Submit entry point for @p kind (bind to the workload driver).
     * @p client selects the issuing CPU node for pulse; the baseline
     * systems are single-client (client 0), as in the paper's testbed.
     */
    workloads::SubmitFn submitter(SystemKind kind, ClientId client = 0);

    /** Reset every statistic (bandwidth, component busy, caches). */
    void reset_stats();

    /**
     * Per-memory-node load imbalance: max/mean of the accelerators'
     * request counts since the last reset_stats(). 1.0 means perfectly
     * balanced (and is also returned for an idle cluster); the Zipf
     * skew the placement plane fights shows up here directly.
     */
    double node_load_imbalance() const;

    /** Per-node accelerator request counts since the last reset. */
    std::vector<std::uint64_t> node_request_counts() const;

    /** Aggregate achieved memory bandwidth over @p window (bytes/s). */
    Rate memory_bandwidth(Time window) const;

    /** Aggregate effective memory-bandwidth capacity (bytes/s). */
    Rate memory_bandwidth_capacity() const;

    /** Client network traffic (tx + rx bytes) since the last reset. */
    Bytes client_network_bytes() const;

    /** Register all component stats under their canonical names. */
    void register_stats(StatRegistry& registry);

    /**
     * One-call unified metrics snapshot: every registered component
     * stat plus tracer meta-counters, ready for JSON/CSV export.
     */
    void export_metrics(trace::MetricsExporter& exporter,
                        const std::string& prefix = "");

    /**
     * Checkpoint/restore (src/core/checkpoint.cc): serialize the full
     * simulation state — clock + telemetry counters, network, memory
     * contents, allocator, channels, accelerators, offload engines —
     * so long scenarios can fork from a warmed snapshot instead of
     * replaying the build + warmup phases.
     *
     * Preconditions (asserted): the cluster is *quiesced* — the event
     * queue is empty and no traversal is in flight — and the optional
     * planes (faults, checker, placement, replication, tracing) are
     * off; their state machines hold type-erased callbacks and are
     * deliberately outside the snapshot. restore_checkpoint must be
     * applied to a cluster built from a ClusterConfig whose
     * fingerprint matches the snapshot's (same topology, policies and
     * seed); a restored run then continues bit-identically to the
     * uninterrupted one.
     */
    std::vector<std::uint8_t> save_checkpoint() const;
    void restore_checkpoint(const std::vector<std::uint8_t>& bytes);

    /** File-based convenience wrappers around the blob API. */
    void save_checkpoint_file(const std::string& path) const;
    void restore_checkpoint_file(const std::string& path);

  private:
    ClusterConfig config_;
    sim::EventQueue queue_;
    trace::Tracer tracer_;
    std::unique_ptr<mem::GlobalMemory> memory_;
    std::unique_ptr<mem::ClusterAllocator> allocator_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<faults::FaultPlane> fault_plane_;
    std::unique_ptr<check::Checker> checker_;
    std::unique_ptr<placement::PlacementPlane> placement_plane_;
    std::unique_ptr<replication::ReplicationPlane> replication_plane_;
    std::unique_ptr<serve::QosController> serve_plane_;
    std::vector<std::unique_ptr<mem::ChannelSet>> channels_;
    std::vector<std::unique_ptr<accel::Accelerator>> accelerators_;
    std::vector<std::unique_ptr<offload::OffloadEngine>> offload_;
    std::unique_ptr<baselines::CacheClient> cache_;
    std::unique_ptr<baselines::RpcRuntime> rpc_;
    std::unique_ptr<baselines::RpcRuntime> rpc_wimpy_;
    std::unique_ptr<baselines::RpcRuntime> rpc_tcp_;  ///< Cache+RPC leg
    std::unique_ptr<baselines::AifmClient> aifm_;
};

}  // namespace pulse::core

#endif  // PULSE_CORE_CLUSTER_H
