/**
 * @file
 * Umbrella header: the whole pulse public API in one include.
 *
 * Typical flow:
 *
 *   #include "core/pulse.h"
 *
 *   pulse::core::ClusterConfig config;         // rack shape + timing
 *   pulse::core::Cluster cluster(config);       // the simulated rack
 *
 *   pulse::ds::HashTable table(cluster.memory(),
 *                              cluster.allocator(), {...});
 *   table.insert_many(keys);                    // functional build
 *
 *   auto op = table.make_find(key, callback);   // iterator -> ISA op
 *   cluster.submitter(pulse::core::SystemKind::kPulse)(std::move(op));
 *   cluster.queue().run();                      // drive the simulation
 *
 * Lower layers (isa::, accel::, net::, mem::) are public too — the
 * benches and tests use them directly — but most applications only
 * need the types re-exported here.
 */
#ifndef PULSE_CORE_PULSE_H
#define PULSE_CORE_PULSE_H

// The rack and compared systems.
#include "core/cluster.h"

// Programming model: programs, builder, analysis, assembler.
#include "isa/analysis.h"
#include "isa/assembler.h"
#include "isa/codec.h"
#include "isa/program.h"
#include "isa/traversal.h"

// Adapted data structures (supp. Table 3).
#include "ds/balanced_tree.h"
#include "ds/bptree.h"
#include "ds/bst_map.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "ds/prox_graph.h"
#include "ds/table3.h"

// Workloads and the measurement driver.
#include "apps/apps.h"
#include "workloads/driver.h"
#include "workloads/workloads.h"

// Energy accounting.
#include "energy/energy_model.h"

#endif  // PULSE_CORE_PULSE_H
