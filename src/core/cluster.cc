#include "core/cluster.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "faults/nemesis.h"

namespace pulse::core {

const char*
system_name(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kPulse: return "pulse";
      case SystemKind::kCache: return "Cache";
      case SystemKind::kRpc: return "RPC";
      case SystemKind::kRpcWimpy: return "RPC-W";
      case SystemKind::kCacheRpc: return "Cache+RPC";
    }
    return "?";
}

ClusterConfig::ClusterConfig()
{
    // RPC-W: the paper emulates wimpy SmartNIC cores by down-clocking
    // server cores to 1.0 GHz; being 2.6x slower per instruction, more
    // of them are needed to saturate the node's memory bandwidth, and
    // the per-request RPC software path slows with the clock.
    rpc_wimpy.clock_ghz = 1.0;
    rpc_wimpy.workers_per_node = 24;
    rpc_wimpy.server_overhead = nanos(850.0 * 2.6);
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), tracer_(config.trace)
{
    PULSE_ASSERT(config.num_mem_nodes >= 1, "need a memory node");
    PULSE_ASSERT(config.num_clients >= 1, "need a client");

    memory_ = std::make_unique<mem::GlobalMemory>(config.num_mem_nodes,
                                                  config.node_capacity);
    allocator_ = std::make_unique<mem::ClusterAllocator>(
        memory_->address_map(), config.alloc_policy, config.seed,
        config.uniform_chunk_bytes);

    net::NetworkConfig net_config = config.network;
    net_config.num_clients = config.num_clients;
    net_config.num_mem_nodes = config.num_mem_nodes;
    network_ = std::make_unique<net::Network>(queue_, net_config);
    network_->set_tracer(&tracer_);

    if (config.faults.enabled()) {
        fault_plane_ =
            std::make_unique<faults::FaultPlane>(config.faults);
        network_->attach_fault_plane(fault_plane_.get());
    }

    std::vector<mem::ChannelSet*> channel_ptrs;
    for (NodeId node = 0; node < config.num_mem_nodes; node++) {
        channels_.push_back(std::make_unique<mem::ChannelSet>(
            config.channels_per_node, config.channel_raw_bw,
            config.interconnect_efficiency));
        channels_.back()->set_tracer(&tracer_, node);
        channel_ptrs.push_back(channels_.back().get());

        accelerators_.push_back(std::make_unique<accel::Accelerator>(
            queue_, *network_, *memory_, *channels_.back(), node,
            config.accel));
        accelerators_.back()->set_fault_plane(fault_plane_.get());
        accelerators_.back()->set_tracer(&tracer_);

        // Hierarchical address translation (section 5): one cur_ptr
        // rule per node at the switch; the node's full region in its
        // accelerator TCAM (identity-mapped, read-write).
        const mem::NodeRegion& region =
            memory_->address_map().region(node);
        network_->switch_table().add_rule(
            net::SwitchRule{region.base, region.size, node});
        const bool installed = accelerators_.back()->tcam().insert(
            mem::RangeEntry{region.base, region.size, 0,
                            mem::Perm::kReadWrite});
        PULSE_ASSERT(installed, "TCAM rejected the node region");
    }

    if (config.placement.enabled()) {
        std::vector<mem::RangeTcam*> tcams;
        tcams.reserve(accelerators_.size());
        for (auto& accelerator : accelerators_) {
            tcams.push_back(&accelerator->tcam());
        }
        placement_plane_ = std::make_unique<placement::PlacementPlane>(
            queue_, *network_, *memory_, *allocator_, std::move(tcams),
            channel_ptrs, config.placement);
        for (auto& accelerator : accelerators_) {
            accelerator->set_placement(placement_plane_.get());
        }
        // Cutovers hand the source accelerator's dedup window to the
        // destination so exactly-once survives the responder change.
        std::vector<accel::ReplayWindow*> replays;
        replays.reserve(accelerators_.size());
        for (auto& accelerator : accelerators_) {
            replays.push_back(&accelerator->replay_window());
        }
        placement_plane_->attach_replay_windows(std::move(replays));
    }

    if (config.replication.enabled()) {
        std::vector<mem::RangeTcam*> tcams;
        std::vector<accel::ReplayWindow*> replays;
        tcams.reserve(accelerators_.size());
        replays.reserve(accelerators_.size());
        for (auto& accelerator : accelerators_) {
            tcams.push_back(&accelerator->tcam());
            replays.push_back(&accelerator->replay_window());
        }
        replication_plane_ =
            std::make_unique<replication::ReplicationPlane>(
                queue_, *network_, *memory_, *allocator_,
                std::move(tcams), channel_ptrs, config.replication);
        replication_plane_->attach_replay_windows(std::move(replays));
        for (auto& accelerator : accelerators_) {
            accelerator->set_replication(replication_plane_.get());
        }
        // A migration cutover changes the authoritative owner of a
        // span; the plane must know so its mirrors skip the owner.
        if (placement_plane_) {
            placement_plane_->set_cutover_observer(
                [plane = replication_plane_.get()](
                    NodeId src, NodeId dst, VirtAddr va_base,
                    Bytes length) {
                    plane->notify_cutover(src, dst, va_base, length);
                });
        }
        // Scripted crash windows heal at their end: resume probing the
        // node and let the scan rebuild redundancy involving it.
        faults::schedule_recoveries(
            queue_, config.faults.timeline,
            [plane = replication_plane_.get()](NodeId node) {
                plane->notify_recovered(node);
            });
    }

    if (config.serve.enabled()) {
        serve_plane_ =
            std::make_unique<serve::QosController>(queue_, config.serve);
        for (NodeId node = 0; node < accelerators_.size(); node++) {
            accel::Accelerator* accelerator = accelerators_[node].get();
            accelerator->set_serving(serve_plane_.get());
            // Released (previously quota-throttled) packets re-enter
            // at placement: net-stack and scheduler stages were
            // already paid on the way in.
            serve_plane_->attach_node(
                node, [accelerator](net::TraversalPacket&& packet) {
                    accelerator->readmit(std::move(packet));
                });
        }
    }

    for (ClientId client = 0; client < config.num_clients; client++) {
        offload_.push_back(std::make_unique<offload::OffloadEngine>(
            queue_, *network_, *memory_, client, config.offload));
        offload_.back()->set_tracer(&tracer_);
    }
    cache_ = std::make_unique<baselines::CacheClient>(
        queue_, *network_, *memory_, /*client=*/0, config.cache,
        channel_ptrs);
    rpc_ = std::make_unique<baselines::RpcRuntime>(
        queue_, *network_, *memory_, channel_ptrs, /*client=*/0,
        config.rpc);
    rpc_wimpy_ = std::make_unique<baselines::RpcRuntime>(
        queue_, *network_, *memory_, channel_ptrs, /*client=*/0,
        config.rpc_wimpy);

    // Cache+RPC rides a TCP-like transport (AIFM's stack, section 7.1).
    baselines::RpcConfig tcp_rpc = config.rpc;
    tcp_rpc.transport_overhead_factor = 3.0;
    rpc_tcp_ = std::make_unique<baselines::RpcRuntime>(
        queue_, *network_, *memory_, channel_ptrs, /*client=*/0,
        tcp_rpc);
    aifm_ = std::make_unique<baselines::AifmClient>(queue_, *rpc_tcp_,
                                                    config.aifm);

    if (config.check.enabled()) {
        checker_ = std::make_unique<check::Checker>(
            config.check, queue_, *network_, *memory_,
            config.accel.max_iters_cap, offload::kGlobalIterationGuard);
        if (config.check.invariants) {
            queue_.set_invariants(&checker_->registry());
        }
        for (auto& accelerator : accelerators_) {
            if (config.check.invariants) {
                accelerator->set_invariants(&checker_->registry());
            }
            checker_->attach_accelerator(accelerator.get());
        }
        for (auto& engine : offload_) {
            checker_->attach_engine(engine.get());
        }
    }
}

accel::Accelerator&
Cluster::accelerator(NodeId node)
{
    PULSE_ASSERT(node < accelerators_.size(), "bad node id %u", node);
    return *accelerators_[node];
}

mem::ChannelSet&
Cluster::channels(NodeId node)
{
    PULSE_ASSERT(node < channels_.size(), "bad node id %u", node);
    return *channels_[node];
}

baselines::RpcRuntime&
Cluster::rpc(bool wimpy)
{
    return wimpy ? *rpc_wimpy_ : *rpc_;
}

offload::OffloadEngine&
Cluster::offload_engine(ClientId client)
{
    PULSE_ASSERT(client < offload_.size(), "bad client id %u", client);
    return *offload_[client];
}

std::uint64_t
Cluster::verify_quiesce()
{
    if (!checker_) {
        return 0;
    }
    // Drain leftovers (quenched retransmit timers are harmless no-op
    // events) so the structural audit sees the settled state.
    queue_.run();
    return checker_->verify_quiesce();
}

workloads::SubmitFn
Cluster::submitter(SystemKind kind, ClientId client)
{
    PULSE_ASSERT(kind == SystemKind::kPulse || client == 0,
                 "baseline systems are single-client");
    switch (kind) {
      case SystemKind::kPulse:
        if (checker_ && checker_->oracle() != nullptr) {
            return [this, client](offload::Operation&& op) {
                offload::OffloadEngine& engine = *offload_[client];
                const isa::ProgramAnalysis& analysis =
                    engine.analysis_for(op.program);
                checker_->oracle()->arm(op, analysis.valid,
                                        engine.should_offload(analysis));
                if (replication_plane_) {
                    replication_plane_->note_activity();
                }
                engine.submit(std::move(op));
            };
        }
        return [this, client](offload::Operation&& op) {
            if (replication_plane_) {
                replication_plane_->note_activity();
            }
            offload_[client]->submit(std::move(op));
        };
      case SystemKind::kCache:
        return [this](offload::Operation&& op) {
            cache_->submit(std::move(op));
        };
      case SystemKind::kRpc:
        return [this](offload::Operation&& op) {
            rpc_->submit(std::move(op));
        };
      case SystemKind::kRpcWimpy:
        return [this](offload::Operation&& op) {
            rpc_wimpy_->submit(std::move(op));
        };
      case SystemKind::kCacheRpc:
        return [this](offload::Operation&& op) {
            aifm_->submit(std::move(op));
        };
    }
    panic("unknown system kind");
}

void
Cluster::reset_stats()
{
    tracer_.clear();
    network_->reset_stats();
    if (fault_plane_) {
        fault_plane_->reset_stats();
    }
    if (placement_plane_) {
        placement_plane_->reset_stats();
    }
    if (replication_plane_) {
        replication_plane_->reset_stats();
    }
    for (auto& channels : channels_) {
        channels->reset_stats();
    }
    for (auto& accelerator : accelerators_) {
        accelerator->reset_stats();
    }
    for (auto& engine : offload_) {
        engine->reset_stats();
    }
    cache_->reset_stats();
    rpc_->reset_stats();
    rpc_wimpy_->reset_stats();
    rpc_tcp_->reset_stats();
    aifm_->reset_stats();
}

std::vector<std::uint64_t>
Cluster::node_request_counts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(accelerators_.size());
    for (const auto& accelerator : accelerators_) {
        counts.push_back(
            accelerator->stats().requests_received.value());
    }
    return counts;
}

double
Cluster::node_load_imbalance() const
{
    const std::vector<std::uint64_t> counts = node_request_counts();
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    for (const std::uint64_t count : counts) {
        max = std::max(max, count);
        sum += count;
    }
    if (sum == 0 || counts.empty()) {
        return 1.0;
    }
    const double mean =
        static_cast<double>(sum) / static_cast<double>(counts.size());
    return static_cast<double>(max) / mean;
}

Rate
Cluster::memory_bandwidth(Time window) const
{
    Rate total = 0;
    for (const auto& channels : channels_) {
        total += channels->achieved_bandwidth(window);
    }
    return total;
}

Rate
Cluster::memory_bandwidth_capacity() const
{
    Rate total = 0;
    for (const auto& channels : channels_) {
        total += channels->total_effective_bandwidth();
    }
    return total;
}

Bytes
Cluster::client_network_bytes() const
{
    const auto addr = net::EndpointAddr::client(0);
    return network_->bytes_sent_by(addr) +
           network_->bytes_received_by(addr);
}

void
Cluster::register_stats(StatRegistry& registry)
{
    for (NodeId node = 0; node < accelerators_.size(); node++) {
        accelerators_[node]->register_stats(
            "node" + std::to_string(node) + ".accel", registry);
    }
    for (ClientId client = 0; client < offload_.size(); client++) {
        const auto& stats = offload_[client]->stats();
        const std::string prefix =
            "client" + std::to_string(client) + ".offload.";
        registry.register_counter(prefix + "submitted",
                                  &stats.submitted);
        registry.register_counter(prefix + "offloaded",
                                  &stats.offloaded);
        registry.register_counter(prefix + "fallback",
                                  &stats.fallback);
        registry.register_counter(prefix + "retransmits",
                                  &stats.retransmits);
        registry.register_counter(prefix + "client_bounces",
                                  &stats.client_bounces);
        registry.register_counter(prefix + "continuations",
                                  &stats.continuations);
        registry.register_counter(prefix + "failures",
                                  &stats.failures);
        registry.register_counter(prefix + "stale_responses",
                                  &stats.stale_responses);
    }
    if (fault_plane_) {
        fault_plane_->register_stats("faults", registry);
    }
    if (placement_plane_) {
        placement_plane_->register_stats("placement", registry);
    }
    if (replication_plane_) {
        replication_plane_->register_stats("replication", registry);
    }
    if (serve_plane_) {
        serve_plane_->register_stats("serve", registry);
    }
    {
        const auto& stats = cache_->stats();
        registry.register_counter("client0.cache.operations",
                                  &stats.operations);
        registry.register_counter("client0.cache.faults",
                                  &stats.faults);
        registry.register_counter("client0.cache.hits", &stats.hits);
        registry.register_accumulator("client0.cache.fault_wait_ps",
                                      &stats.fault_wait_time);
    }
    for (const auto& [name, runtime] :
         {std::pair<const char*, baselines::RpcRuntime*>{
              "rpc", rpc_.get()},
          {"rpc_wimpy", rpc_wimpy_.get()},
          {"rpc_tcp", rpc_tcp_.get()}}) {
        const auto& stats = runtime->stats();
        const std::string prefix = std::string(name) + ".";
        registry.register_counter(prefix + "requests",
                                  &stats.requests);
        registry.register_counter(prefix + "responses",
                                  &stats.responses);
        registry.register_counter(prefix + "node_bounces",
                                  &stats.node_bounces);
        registry.register_counter(prefix + "iterations",
                                  &stats.iterations);
        registry.register_counter(prefix + "retransmits",
                                  &stats.retransmits);
        registry.register_counter(prefix + "replays",
                                  &stats.replays);
        registry.register_counter(prefix + "failures",
                                  &stats.failures);
        registry.register_accumulator(prefix + "worker_busy_ps",
                                      &stats.worker_busy_time);
    }
    {
        const auto& stats = aifm_->stats();
        registry.register_counter("client0.aifm.operations",
                                  &stats.operations);
        registry.register_counter("client0.aifm.hits", &stats.hits);
        registry.register_counter("client0.aifm.misses",
                                  &stats.misses);
        registry.register_counter("client0.aifm.evictions",
                                  &stats.evictions);
    }
}

void
Cluster::export_metrics(trace::MetricsExporter& exporter,
                        const std::string& prefix)
{
    StatRegistry registry;
    register_stats(registry);
    exporter.add_registry(prefix, registry);
    exporter.set(prefix + "trace.spans_recorded",
                 static_cast<double>(tracer_.recorded()));
    exporter.set(prefix + "trace.spans_dropped",
                 static_cast<double>(tracer_.dropped()));
    if (replication_plane_) {
        exporter.set(
            prefix + "replication.backlog_bytes",
            static_cast<double>(
                replication_plane_->rereplication_backlog_bytes()));
        exporter.set(prefix + "replication.failovers",
                     static_cast<double>(
                         replication_plane_->failovers().size()));
        for (NodeId node = 0; node < accelerators_.size(); node++) {
            exporter.set(prefix + "replication.node" +
                             std::to_string(node) + ".suspicion",
                         replication_plane_->suspicion(node));
        }
    }
    if (serve_plane_) {
        for (const auto& [tenant, counters] :
             serve_plane_->tenant_counters()) {
            const std::string base =
                prefix + "serve.tenant" + std::to_string(tenant);
            exporter.set(base + ".admitted",
                         static_cast<double>(counters.admitted));
            exporter.set(base + ".shed",
                         static_cast<double>(counters.shed));
            exporter.set(base + ".throttled",
                         static_cast<double>(counters.throttled));
        }
    }
}

}  // namespace pulse::core
